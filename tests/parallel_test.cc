// Tests for the performance layer: thread-pool/parallel-for determinism,
// parallel revision kernels against the sequential reference, the
// cardinality-bucketed minc/maxc filters, the capped Hamming primitives,
// and the EnumerateModels LRU cache (hit counters, eviction, and
// bit-identical results).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "logic/parser.h"
#include "model/model_set.h"
#include "obs/metrics.h"
#include "revision/model_based.h"
#include "revision/operator.h"
#include "solve/model_cache.h"
#include "solve/services.h"
#include "tests/test_util.h"
#include "util/parallel.h"
#include "util/random.h"

namespace revise {
namespace {

using ::revise::testing::BruteForceModels;

// Restores the default parallelism when a test scope ends.
class ScopedThreads {
 public:
  explicit ScopedThreads(size_t threads) { SetParallelThreadsOverride(threads); }
  ~ScopedThreads() { SetParallelThreadsOverride(0); }
};

uint64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name)->Value();
}

// ---------------------------------------------------------------------------
// ShardRanges / ThreadPool
// ---------------------------------------------------------------------------

// Enumerates purely for its model-cache side effect; the returned set is
// irrelevant to the caller beyond a width sanity check.
void WarmCache(const Formula& f, const Alphabet& alphabet) {
  const ModelSet models = EnumerateModels(f, alphabet);
  EXPECT_EQ(models.alphabet().size(), alphabet.size());
}

TEST(ShardRangesTest, PartitionsExactly) {
  for (const size_t n : {0u, 1u, 2u, 7u, 8u, 9u, 100u, 1000u}) {
    for (const size_t shards : {1u, 2u, 3u, 8u, 64u}) {
      const std::vector<ShardRange> ranges = ShardRanges(n, shards);
      if (n == 0) {
        EXPECT_TRUE(ranges.empty());
        continue;
      }
      EXPECT_EQ(std::min<size_t>(shards, n), ranges.size());
      size_t expected_begin = 0;
      for (const ShardRange& r : ranges) {
        EXPECT_EQ(expected_begin, r.begin);
        EXPECT_LT(r.begin, r.end);
        expected_begin = r.end;
      }
      EXPECT_EQ(n, expected_begin);
      // Near-equal: lengths differ by at most one.
      EXPECT_LE(ranges.front().end - ranges.front().begin,
                ranges.back().end - ranges.back().begin + 1);
    }
  }
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ScopedThreads threads(8);
  constexpr size_t kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  ThreadPool::Global().Run(kTasks,
                           [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(1, hits[i].load()) << i;
}

TEST(ThreadPoolTest, NestedRunServializesWithoutDeadlock) {
  ScopedThreads threads(4);
  std::atomic<int> total{0};
  ThreadPool::Global().Run(8, [&](size_t) {
    ThreadPool::Global().Run(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(64, total.load());
}

TEST(ThreadPoolTest, OverrideControlsParallelThreads) {
  SetParallelThreadsOverride(3);
  EXPECT_EQ(3u, ParallelThreads());
  SetParallelThreadsOverride(0);
  EXPECT_GE(ParallelThreads(), 1u);
}

TEST(ParallelMapTest, MergesInShardOrder) {
  ScopedThreads threads(8);
  const std::vector<std::vector<size_t>> shards =
      ParallelMapRanges<std::vector<size_t>>(
          100, 1, [](size_t begin, size_t end) {
            std::vector<size_t> out;
            for (size_t i = begin; i < end; ++i) out.push_back(i);
            return out;
          });
  std::vector<size_t> merged;
  for (const auto& shard : shards) {
    merged.insert(merged.end(), shard.begin(), shard.end());
  }
  ASSERT_EQ(100u, merged.size());
  for (size_t i = 0; i < merged.size(); ++i) EXPECT_EQ(i, merged[i]);
}

// ---------------------------------------------------------------------------
// Randomized kernel equivalence across thread counts
// ---------------------------------------------------------------------------

Interpretation RandomInterpretation(size_t bits, Rng* rng) {
  Interpretation m(bits);
  for (size_t i = 0; i < bits; ++i) m.Set(i, rng->Next() & 1);
  return m;
}

ModelSet RandomModelSet(const Alphabet& alphabet, size_t count, Rng* rng) {
  std::vector<Interpretation> models;
  for (size_t i = 0; i < count; ++i) {
    models.push_back(RandomInterpretation(alphabet.size(), rng));
  }
  return ModelSet(alphabet, std::move(models));
}

TEST(ParallelKernelTest, AllOperatorsBitIdenticalAcrossThreadCounts) {
  std::vector<Var> vars;
  for (Var v = 0; v < 10; ++v) vars.push_back(v);
  const Alphabet alphabet(vars);
  Rng rng(20260806);
  for (int round = 0; round < 20; ++round) {
    const ModelSet mt =
        RandomModelSet(alphabet, 1 + rng.Below(48), &rng);
    const ModelSet mp =
        RandomModelSet(alphabet, 1 + rng.Below(48), &rng);
    for (const ModelBasedOperator* op : AllModelBasedOperators()) {
      ModelSet reference;
      {
        ScopedThreads threads(1);
        reference = op->ReviseModelSets(mt, mp);
      }
      for (const size_t threads : {2u, 8u}) {
        ScopedThreads scoped(threads);
        const ModelSet parallel = op->ReviseModelSets(mt, mp);
        EXPECT_EQ(reference, parallel)
            << op->name() << " differs at " << threads
            << " threads (round " << round << ")";
      }
    }
  }
}

TEST(ParallelKernelTest, GlobalSweepsMatchSequentialReference) {
  std::vector<Var> vars;
  for (Var v = 0; v < 12; ++v) vars.push_back(v);
  const Alphabet alphabet(vars);
  Rng rng(4242);
  for (int round = 0; round < 10; ++round) {
    const ModelSet mt = RandomModelSet(alphabet, 1 + rng.Below(40), &rng);
    const ModelSet mp = RandomModelSet(alphabet, 1 + rng.Below(40), &rng);
    std::vector<Interpretation> ref_diffs;
    std::optional<size_t> ref_distance;
    {
      ScopedThreads threads(1);
      ref_diffs = GlobalMinimalDiffsOfSets(mt, mp);
      ref_distance = GlobalMinDistanceOfSets(mt, mp);
    }
    ScopedThreads threads(8);
    EXPECT_EQ(ref_diffs, GlobalMinimalDiffsOfSets(mt, mp));
    EXPECT_EQ(ref_distance, GlobalMinDistanceOfSets(mt, mp));
  }
}

TEST(ParallelKernelTest, DeterministicAcrossRepeatedRuns) {
  std::vector<Var> vars;
  for (Var v = 0; v < 10; ++v) vars.push_back(v);
  const Alphabet alphabet(vars);
  Rng rng(7);
  const ModelSet mt = RandomModelSet(alphabet, 40, &rng);
  const ModelSet mp = RandomModelSet(alphabet, 40, &rng);
  ScopedThreads threads(8);
  for (const ModelBasedOperator* op : AllModelBasedOperators()) {
    const ModelSet first = op->ReviseModelSets(mt, mp);
    const ModelSet second = op->ReviseModelSets(mt, mp);
    EXPECT_EQ(first, second) << op->name();
  }
}

// ---------------------------------------------------------------------------
// Sharpened primitives
// ---------------------------------------------------------------------------

// The pre-sharpening O(n^2) filters, kept as the test reference.
std::vector<Interpretation> NaiveMinimal(std::vector<Interpretation> sets) {
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<Interpretation> result;
  for (size_t i = 0; i < sets.size(); ++i) {
    bool minimal = true;
    for (size_t j = 0; j < sets.size(); ++j) {
      if (i != j && sets[j].IsProperSubsetOf(sets[i])) minimal = false;
    }
    if (minimal) result.push_back(sets[i]);
  }
  return result;
}

std::vector<Interpretation> NaiveMaximal(std::vector<Interpretation> sets) {
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<Interpretation> result;
  for (size_t i = 0; i < sets.size(); ++i) {
    bool maximal = true;
    for (size_t j = 0; j < sets.size(); ++j) {
      if (i != j && sets[i].IsProperSubsetOf(sets[j])) maximal = false;
    }
    if (maximal) result.push_back(sets[i]);
  }
  return result;
}

TEST(InclusionFilterTest, MatchesNaiveReference) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    std::vector<Interpretation> sets;
    const size_t count = rng.Below(60);
    for (size_t i = 0; i < count; ++i) {
      sets.push_back(RandomInterpretation(9, &rng));
    }
    EXPECT_EQ(NaiveMinimal(sets), MinimalUnderInclusion(sets));
    EXPECT_EQ(NaiveMaximal(sets), MaximalUnderInclusion(sets));
  }
}

TEST(InclusionFilterTest, HandlesEmptyAndSingleton) {
  EXPECT_TRUE(MinimalUnderInclusion({}).empty());
  EXPECT_TRUE(MaximalUnderInclusion({}).empty());
  const Interpretation m(5);
  EXPECT_EQ(std::vector<Interpretation>{m}, MinimalUnderInclusion({m, m}));
  EXPECT_EQ(std::vector<Interpretation>{m}, MaximalUnderInclusion({m, m}));
}

TEST(InterpretationPrimitiveTest, CappedDistanceAgreesWithExact) {
  Rng rng(1234);
  for (int round = 0; round < 200; ++round) {
    const size_t bits = 1 + rng.Below(130);  // spans multiple words
    const Interpretation a = RandomInterpretation(bits, &rng);
    const Interpretation b = RandomInterpretation(bits, &rng);
    const size_t exact = a.HammingDistance(b);
    for (const size_t cap : {size_t{0}, exact / 2, exact, exact + 3}) {
      const size_t capped = a.HammingDistanceCapped(b, cap);
      if (exact <= cap) {
        EXPECT_EQ(exact, capped);
      } else {
        EXPECT_EQ(cap + 1, capped);
      }
    }
  }
}

TEST(InterpretationPrimitiveTest, DiffersOutsideAgreesWithSubsetTest) {
  Rng rng(555);
  for (int round = 0; round < 200; ++round) {
    const size_t bits = 1 + rng.Below(130);
    const Interpretation a = RandomInterpretation(bits, &rng);
    const Interpretation b = RandomInterpretation(bits, &rng);
    const Interpretation mask = RandomInterpretation(bits, &rng);
    EXPECT_EQ(!a.SymmetricDifference(b).IsSubsetOf(mask),
              a.DiffersOutside(b, mask));
  }
}

// ---------------------------------------------------------------------------
// Model cache
// ---------------------------------------------------------------------------

// Restores global-cache capacity and contents when a test scope ends.
class ScopedCache {
 public:
  explicit ScopedCache(size_t capacity) {
    ModelCache::Global().Clear();
    ModelCache::Global().set_capacity(capacity);
  }
  ~ScopedCache() {
    ModelCache::Global().Clear();
    ModelCache::Global().set_capacity(ModelCache::kDefaultCapacity);
  }
};

TEST(ModelCacheTest, SecondEnumerationIsAHit) {
  ScopedCache cache(ModelCache::kDefaultCapacity);
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("(a | b) & (b | c)", &vocabulary);
  const Alphabet alphabet(f.Vars());
  const uint64_t hits_before = CounterValue("solve.model_cache.hits");
  const uint64_t misses_before = CounterValue("solve.model_cache.misses");
  const ModelSet cold = EnumerateModels(f, alphabet);
  EXPECT_EQ(misses_before + 1, CounterValue("solve.model_cache.misses"));
  EXPECT_EQ(hits_before, CounterValue("solve.model_cache.hits"));
  const ModelSet warm = EnumerateModels(f, alphabet);
  EXPECT_EQ(hits_before + 1, CounterValue("solve.model_cache.hits"));
  EXPECT_EQ(cold, warm);
}

TEST(ModelCacheTest, StructurallyEqualFormulasShareAnEntry) {
  ScopedCache cache(ModelCache::kDefaultCapacity);
  Vocabulary vocabulary;
  const Formula first = ParseOrDie("a & (b | !c)", &vocabulary);
  // A second parse builds distinct DAG nodes with the same structure.
  const Formula second = ParseOrDie("a & (b | !c)", &vocabulary);
  EXPECT_NE(first.id(), second.id());
  EXPECT_EQ(first.StructuralHash(), second.StructuralHash());
  const Alphabet alphabet(first.Vars());
  const ModelSet warm = EnumerateModels(first, alphabet);
  const uint64_t hits_before = CounterValue("solve.model_cache.hits");
  const ModelSet cached = EnumerateModels(second, alphabet);
  EXPECT_EQ(hits_before + 1, CounterValue("solve.model_cache.hits"));
  EXPECT_EQ(warm.size(), cached.size());
}

TEST(ModelCacheTest, DistinctAlphabetsAreDistinctEntries) {
  ScopedCache cache(ModelCache::kDefaultCapacity);
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("a | b", &vocabulary);
  const Var c = vocabulary.Intern("c");
  const Alphabet narrow(f.Vars());
  std::vector<Var> wide_vars = f.Vars();
  wide_vars.push_back(c);
  const Alphabet wide(wide_vars);
  const ModelSet over_narrow = EnumerateModels(f, narrow);
  const ModelSet over_wide = EnumerateModels(f, wide);
  EXPECT_EQ(3u, over_narrow.size());
  EXPECT_EQ(6u, over_wide.size());  // the free letter c doubles the models
}

TEST(ModelCacheTest, LruEvictionDropsTheColdestEntry) {
  ScopedCache cache(2);
  Vocabulary vocabulary;
  const Formula f1 = ParseOrDie("a", &vocabulary);
  const Formula f2 = ParseOrDie("b", &vocabulary);
  const Formula f3 = ParseOrDie("a & b", &vocabulary);
  const Alphabet alphabet(
      {vocabulary.Find("a"), vocabulary.Find("b")});
  const uint64_t evictions_before =
      CounterValue("solve.model_cache.evictions");
  WarmCache(f1, alphabet);
  WarmCache(f2, alphabet);
  EXPECT_EQ(2u, ModelCache::Global().size());
  // Touch f1 so f2 becomes the LRU entry, then overflow with f3.
  WarmCache(f1, alphabet);
  WarmCache(f3, alphabet);
  EXPECT_EQ(2u, ModelCache::Global().size());
  EXPECT_EQ(evictions_before + 1, CounterValue("solve.model_cache.evictions"));
  // f1 and f3 are warm; f2 was evicted and misses again.
  const uint64_t misses_before = CounterValue("solve.model_cache.misses");
  WarmCache(f1, alphabet);
  WarmCache(f3, alphabet);
  EXPECT_EQ(misses_before, CounterValue("solve.model_cache.misses"));
  WarmCache(f2, alphabet);
  EXPECT_EQ(misses_before + 1, CounterValue("solve.model_cache.misses"));
}

TEST(ModelCacheTest, DisabledCacheStillBitIdentical) {
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("(a -> b) & (c ^ a)", &vocabulary);
  const Alphabet alphabet(f.Vars());
  ModelSet with_cache;
  {
    ScopedCache cache(ModelCache::kDefaultCapacity);
    WarmCache(f, alphabet);                     // cold fill
    with_cache = EnumerateModels(f, alphabet);  // warm copy
  }
  ModelSet without_cache;
  {
    ScopedCache cache(0);
    without_cache = EnumerateModels(f, alphabet);
  }
  EXPECT_EQ(without_cache, with_cache);
  EXPECT_EQ(BruteForceModels(f, alphabet), with_cache);
}

TEST(ModelCacheTest, ClearInvalidatesExplicitly) {
  ScopedCache cache(ModelCache::kDefaultCapacity);
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("a ^ b", &vocabulary);
  const Alphabet alphabet(f.Vars());
  WarmCache(f, alphabet);
  EXPECT_EQ(1u, ModelCache::Global().size());
  ModelCache::Global().Clear();
  EXPECT_EQ(0u, ModelCache::Global().size());
  const uint64_t misses_before = CounterValue("solve.model_cache.misses");
  WarmCache(f, alphabet);
  EXPECT_EQ(misses_before + 1, CounterValue("solve.model_cache.misses"));
}

TEST(ModelCacheTest, DisabledCacheCountsEveryLookupAsAMiss) {
  // Regression: Lookup used to bail out before the miss counter when the
  // cache was disabled, so hits + misses undercounted the enumerations
  // and REVISE_MODEL_CACHE=0 runs reported impossible ratios.
  ScopedCache cache(0);
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("a & (b | c)", &vocabulary);
  const Alphabet alphabet(f.Vars());
  const uint64_t hits_before = CounterValue("solve.model_cache.hits");
  const uint64_t misses_before = CounterValue("solve.model_cache.misses");
  WarmCache(f, alphabet);
  WarmCache(f, alphabet);
  EXPECT_EQ(misses_before + 2, CounterValue("solve.model_cache.misses"));
  EXPECT_EQ(hits_before, CounterValue("solve.model_cache.hits"));
  EXPECT_EQ(0u, ModelCache::Global().size());
  EXPECT_EQ(0u, ModelCache::Global().approx_bytes());
}

int64_t GaugeValue(const char* name) {
  return obs::Registry::Global().GetGauge(name)->Value();
}

TEST(ModelCacheTest, DisablingEvictsEverythingAndZeroesGauges) {
  ScopedCache cache(ModelCache::kDefaultCapacity);
  Vocabulary vocabulary;
  const Formula f1 = ParseOrDie("a | b", &vocabulary);
  const Formula f2 = ParseOrDie("a & b", &vocabulary);
  const Alphabet alphabet(f1.Vars());
  WarmCache(f1, alphabet);
  WarmCache(f2, alphabet);
  EXPECT_EQ(2, GaugeValue("solve.model_cache.size"));
  EXPECT_GT(GaugeValue("mem.model_cache_bytes"), 0);
  const uint64_t evictions_before =
      CounterValue("solve.model_cache.evictions");
  ModelCache::Global().set_capacity(0);
  EXPECT_FALSE(ModelCache::Global().enabled());
  EXPECT_EQ(evictions_before + 2,
            CounterValue("solve.model_cache.evictions"));
  EXPECT_EQ(0, GaugeValue("solve.model_cache.size"));
  EXPECT_EQ(0, GaugeValue("mem.model_cache_bytes"));
  EXPECT_EQ(0u, ModelCache::Global().approx_bytes());
  // Inserts while disabled stay no-ops and leave the gauges at zero.
  WarmCache(f1, alphabet);
  EXPECT_EQ(0u, ModelCache::Global().size());
  EXPECT_EQ(0, GaugeValue("solve.model_cache.size"));
  // Re-enabling starts from an empty cache and resumes publishing.
  ModelCache::Global().set_capacity(4);
  WarmCache(f1, alphabet);
  EXPECT_EQ(1, GaugeValue("solve.model_cache.size"));
  EXPECT_GT(GaugeValue("mem.model_cache_bytes"), 0);
}

TEST(ModelCacheTest, LocalInstancesDoNotStompTheGlobalGauges) {
  // Regression: a short-lived local ModelCache used to publish its own
  // size/bytes into the process-wide gauges, leaving them describing a
  // dead cache after the instance was destroyed.
  ScopedCache cache(ModelCache::kDefaultCapacity);
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("a -> b", &vocabulary);
  const Alphabet alphabet(f.Vars());
  WarmCache(f, alphabet);
  const int64_t size_before = GaugeValue("solve.model_cache.size");
  const int64_t bytes_before = GaugeValue("mem.model_cache_bytes");
  EXPECT_EQ(1, size_before);
  {
    ModelCache local(8);
    local.Insert(f, alphabet, EnumerateModels(f, alphabet));
    local.Insert(ParseOrDie("a & b & a", &vocabulary), alphabet,
                 EnumerateModels(f, alphabet));
    EXPECT_EQ(2u, local.size());
    local.set_capacity(0);
    local.Clear();
  }
  EXPECT_EQ(size_before, GaugeValue("solve.model_cache.size"));
  EXPECT_EQ(bytes_before, GaugeValue("mem.model_cache_bytes"));
}

TEST(ModelCacheTest, LimitedEnumerationsBypassTheCache) {
  ScopedCache cache(ModelCache::kDefaultCapacity);
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("a | b | c", &vocabulary);
  const Alphabet alphabet(f.Vars());
  const ModelSet limited = EnumerateModels(f, alphabet, 2);
  EXPECT_EQ(2u, limited.size());
  EXPECT_EQ(0u, ModelCache::Global().size());
  // A later unlimited enumeration is complete, not the truncated set.
  EXPECT_EQ(7u, EnumerateModels(f, alphabet).size());
}

// ---------------------------------------------------------------------------
// QueryEquivalent short-circuits
// ---------------------------------------------------------------------------

// Builds a random formula over names v0..v{vars-1}, possibly mentioning
// letters outside the query alphabet.
Formula RandomFormula(size_t vars, size_t depth, Vocabulary* vocabulary,
                      Rng* rng) {
  if (depth == 0 || rng->Below(4) == 0) {
    const std::string name = "v" + std::to_string(rng->Below(vars));
    return Formula::Variable(vocabulary->Intern(name));
  }
  switch (rng->Below(4)) {
    case 0:
      return Formula::And(RandomFormula(vars, depth - 1, vocabulary, rng),
                          RandomFormula(vars, depth - 1, vocabulary, rng));
    case 1:
      return Formula::Or(RandomFormula(vars, depth - 1, vocabulary, rng),
                         RandomFormula(vars, depth - 1, vocabulary, rng));
    case 2:
      return Formula::Xor(RandomFormula(vars, depth - 1, vocabulary, rng),
                          RandomFormula(vars, depth - 1, vocabulary, rng));
    default:
      return Formula::Not(RandomFormula(vars, depth - 1, vocabulary, rng));
  }
}

TEST(QueryEquivalentTest, MatchesBruteForceProjectionComparison) {
  Rng rng(321);
  Vocabulary vocabulary;
  constexpr size_t kVars = 6;
  std::vector<Var> all_vars;
  for (size_t i = 0; i < kVars; ++i) {
    all_vars.push_back(vocabulary.Intern("v" + std::to_string(i)));
  }
  const Alphabet full(all_vars);
  // Query alphabet covers only the first four letters, so formulas
  // mentioning v4/v5 exercise the projection (enumeration) path while
  // formulas inside the alphabet exercise the single-SAT-call path.
  const Alphabet query({all_vars[0], all_vars[1], all_vars[2], all_vars[3]});
  int equivalent_seen = 0;
  for (int round = 0; round < 60; ++round) {
    const Formula a = RandomFormula(kVars, 3, &vocabulary, &rng);
    const Formula b = rng.Below(3) == 0
                          ? a
                          : RandomFormula(kVars, 3, &vocabulary, &rng);
    const bool expected = BruteForceModels(a, full).ProjectTo(query) ==
                          BruteForceModels(b, full).ProjectTo(query);
    EXPECT_EQ(expected, QueryEquivalent(a, b, query)) << "round " << round;
    if (expected) ++equivalent_seen;
  }
  EXPECT_GT(equivalent_seen, 0);  // both outcomes exercised
}

TEST(QueryEquivalentTest, ProjectionFreePairTakesTheSatShortcut) {
  ScopedCache cache(ModelCache::kDefaultCapacity);
  Vocabulary vocabulary;
  const Formula a = ParseOrDie("(a -> b) & (b -> a)", &vocabulary);
  const Formula b = ParseOrDie("a <-> b", &vocabulary);
  const Alphabet alphabet(a.Vars());
  const uint64_t shortcut_before =
      CounterValue("solve.query_equiv.sat_shortcut");
  EXPECT_TRUE(QueryEquivalent(a, b, alphabet));
  EXPECT_EQ(shortcut_before + 1,
            CounterValue("solve.query_equiv.sat_shortcut"));
}

TEST(QueryEquivalentTest, StreamingSideStopsAtFirstUnsharedModel) {
  ScopedCache cache(ModelCache::kDefaultCapacity);
  Vocabulary vocabulary;
  // b mentions a letter outside the alphabet, forcing the streaming path;
  // the two projections differ, so the stream exits early.
  const Formula a = ParseOrDie("x & y", &vocabulary);
  const Formula b = ParseOrDie("(!x | !y) & (z | !z)", &vocabulary);
  const Alphabet alphabet(
      {vocabulary.Find("x"), vocabulary.Find("y")});
  const uint64_t early_before = CounterValue("solve.query_equiv.early_exit");
  EXPECT_FALSE(QueryEquivalent(a, b, alphabet));
  EXPECT_EQ(early_before + 1, CounterValue("solve.query_equiv.early_exit"));
}

// ---------------------------------------------------------------------------
// Cached enumeration + parallel kernels through the public operator API
// ---------------------------------------------------------------------------

TEST(ParallelPipelineTest, ReviseModelsStableAcrossThreadsAndCache) {
  Vocabulary vocabulary;
  const Theory t({ParseOrDie("a & b & c", &vocabulary)});
  const Formula p = ParseOrDie("(!a & !b & !d) | (!c & b & (a ^ d))",
                               &vocabulary);
  ModelSet reference;
  {
    ScopedCache cache(0);
    ScopedThreads threads(1);
    reference = OperatorById(OperatorId::kDalal)->ReviseModels(t, p);
  }
  for (const size_t threads : {2u, 8u}) {
    ScopedCache cache(ModelCache::kDefaultCapacity);
    ScopedThreads scoped(threads);
    const ModelSet cold = OperatorById(OperatorId::kDalal)->ReviseModels(t, p);
    const ModelSet warm = OperatorById(OperatorId::kDalal)->ReviseModels(t, p);
    EXPECT_EQ(reference, cold);
    EXPECT_EQ(reference, warm);
  }
}

}  // namespace
}  // namespace revise
