// Tests for the observability layer: counter/gauge/histogram registry,
// scoped tracing spans and the span ring buffer, causal span trees
// across the thread pool, Chrome trace export (including flow events),
// memory accounting, the JSON document model, the report schema, and the
// soft-deadline path through SatContext.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sat/literal.h"
#include "solve/sat_context.h"
#include "util/parallel.h"
#include "util/status.h"

namespace revise {
namespace {

using obs::Histogram;
using obs::HistogramSnapshot;
using obs::Json;
using obs::Registry;
using obs::Span;
using obs::SpanRecord;
using obs::TraceSink;

// ---------------------------------------------------------------------
// Counter / gauge registry.

TEST(MetricsTest, CounterIncrementAndValue) {
  obs::Counter* c = Registry::Global().GetCounter("test.counter_basic");
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(MetricsTest, GetCounterInternsByName) {
  obs::Counter* a = Registry::Global().GetCounter("test.interned");
  obs::Counter* b = Registry::Global().GetCounter("test.interned");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), "test.interned");
  // The macro resolves to the same instrument.
  REVISE_OBS_COUNTER("test.interned").Increment();
  EXPECT_GE(a->Value(), 1u);
}

TEST(MetricsTest, SnapshotContainsRegisteredCounter) {
  obs::Counter* c = Registry::Global().GetCounter("test.snapshot_me");
  c->Reset();
  c->Increment(7);
  bool found = false;
  const auto snapshot = Registry::Global().SnapshotCounters();
  for (const auto& [name, value] : snapshot) {
    if (name == "test.snapshot_me") {
      found = true;
      EXPECT_EQ(value, 7u);
    }
  }
  EXPECT_TRUE(found);
  // Snapshots are name-sorted.
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
  }
}

TEST(MetricsTest, GaugeSetAndUpdateMax) {
  obs::Gauge* g = Registry::Global().GetGauge("test.gauge");
  g->Reset();
  g->Set(10);
  EXPECT_EQ(g->Value(), 10);
  g->UpdateMax(5);  // no effect: 5 < 10
  EXPECT_EQ(g->Value(), 10);
  g->UpdateMax(20);
  EXPECT_EQ(g->Value(), 20);
}

TEST(MetricsTest, ConcurrentIncrementsAreNotLost) {
  obs::Counter* c = Registry::Global().GetCounter("test.threads");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------
// Histograms.

TEST(HistogramTest, SmallValuesHaveExactBuckets) {
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v);
  }
}

TEST(HistogramTest, BucketBoundsBracketTheSample) {
  const uint64_t samples[] = {8,    9,     15,        16,  17,
                              100,  1023,  1024,      4095, 1u << 20,
                              uint64_t{1} << 40, ~uint64_t{0}};
  for (const uint64_t v : samples) {
    const size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kNumBuckets) << v;
    const uint64_t upper = Histogram::BucketUpperBound(index);
    EXPECT_GE(upper, v) << v;
    // Sub-bucket width is 2^(octave-3): the conservative representative
    // overshoots by at most 12.5%.
    EXPECT_LE(upper - v, v / Histogram::kSubBuckets) << v;
    // The representative maps back to its own bucket, and the next value
    // starts the next bucket.
    EXPECT_EQ(Histogram::BucketIndex(upper), index) << v;
    if (upper != ~uint64_t{0}) {
      EXPECT_EQ(Histogram::BucketIndex(upper + 1), index + 1) << v;
    }
  }
}

TEST(HistogramTest, SnapshotOfEmptyHistogramIsZero) {
  Histogram* h = Registry::Global().GetHistogram("test.hist_empty");
  h->Reset();
  const HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(HistogramTest, PercentilesOfUniformSamples) {
  Histogram* h = Registry::Global().GetHistogram("test.hist_uniform");
  h->Reset();
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);
  const HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
  // Bucketed percentiles are conservative: at or above the true rank
  // value, within the 12.5% bucket width.
  EXPECT_GE(s.p50, 50u);
  EXPECT_LE(s.p50, 50u + 50u / 8u);
  EXPECT_GE(s.p90, 90u);
  EXPECT_LE(s.p90, 90u + 90u / 8u);
  EXPECT_GE(s.p99, 99u);
  EXPECT_LE(s.p99, 99u + 99u / 8u);
  h->Reset();
  EXPECT_EQ(h->Snapshot().count, 0u);
}

TEST(HistogramTest, SingleSamplePinsEveryPercentile) {
  Histogram* h = Registry::Global().GetHistogram("test.hist_single");
  h->Reset();
  h->Record(37);
  const HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 37u);
  EXPECT_EQ(s.min, 37u);
  EXPECT_EQ(s.max, 37u);
  EXPECT_DOUBLE_EQ(s.Mean(), 37.0);
  // With one sample, every quantile falls in its bucket: the shared
  // representative is the bucket upper bound for 37 (the 32..39 octave
  // slice, representative 39).
  const uint64_t representative =
      Histogram::BucketUpperBound(Histogram::BucketIndex(37));
  EXPECT_EQ(s.p50, representative);
  EXPECT_EQ(s.p90, representative);
  EXPECT_EQ(s.p99, representative);
}

TEST(HistogramTest, SingleExactSamplePercentilesAreExact) {
  // Values below kSubBuckets have width-one buckets, so the percentile
  // estimate is the sample itself, not an overshoot.
  Histogram* h = Registry::Global().GetHistogram("test.hist_exact");
  h->Reset();
  h->Record(5);
  const HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.p50, 5u);
  EXPECT_EQ(s.p90, 5u);
  EXPECT_EQ(s.p99, 5u);
}

TEST(HistogramTest, AllSamplesInOneSubBucketCollapseThePercentiles) {
  // 1000 samples spread across one sub-bucket (1024..1151 share a bucket
  // at 3 sub-bucket bits) are indistinguishable to the estimator: every
  // percentile reports the bucket's upper bound while min/max/sum stay
  // exact.
  Histogram* h = Registry::Global().GetHistogram("test.hist_one_bucket");
  h->Reset();
  const size_t index = Histogram::BucketIndex(1024);
  ASSERT_EQ(Histogram::BucketIndex(1151), index);
  for (uint64_t i = 0; i < 1000; ++i) h->Record(1024 + i % 128);
  const HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min, 1024u);
  EXPECT_EQ(s.max, 1151u);
  const uint64_t representative = Histogram::BucketUpperBound(index);
  EXPECT_EQ(representative, 1151u);
  EXPECT_EQ(s.p50, representative);
  EXPECT_EQ(s.p90, representative);
  EXPECT_EQ(s.p99, representative);
}

TEST(HistogramTest, ZeroSamplesLandInTheZeroBucket) {
  // A histogram fed only zeros must not confuse "no samples" with
  // "samples of value zero".
  Histogram* h = Registry::Global().GetHistogram("test.hist_zeros");
  h->Reset();
  for (int i = 0; i < 10; ++i) h->Record(0);
  const HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.p99, 0u);
}

TEST(HistogramTest, SaturatingSampleStaysInTheLastBucket) {
  Histogram* h = Registry::Global().GetHistogram("test.hist_saturate");
  h->Reset();
  h->Record(~uint64_t{0});
  const HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max, ~uint64_t{0});
  EXPECT_EQ(s.p50, ~uint64_t{0});
  EXPECT_EQ(s.p99, ~uint64_t{0});
}

TEST(HistogramTest, TwoSamplesSplitTheMedianRank) {
  // With two samples, rank(ceil(0.5 * 2)) == 1: the median is the lower
  // sample's bucket, while p90/p99 land on the upper one.
  Histogram* h = Registry::Global().GetHistogram("test.hist_two");
  h->Reset();
  h->Record(2);
  h->Record(1000);
  const HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.p50, 2u);
  EXPECT_EQ(s.p90, Histogram::BucketUpperBound(Histogram::BucketIndex(1000)));
  EXPECT_EQ(s.p99, s.p90);
}

TEST(HistogramTest, MacroInternsByName) {
  Histogram* h = Registry::Global().GetHistogram("test.hist_macro");
  h->Reset();
  REVISE_OBS_HISTOGRAM("test.hist_macro").Record(3);
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_EQ(h->name(), "test.hist_macro");
}

TEST(HistogramTest, ConcurrentRecordsAreNotLost) {
  Histogram* h = Registry::Global().GetHistogram("test.hist_threads");
  h->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot s = h->Snapshot();
  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(s.count, kTotal);
  EXPECT_EQ(s.sum, kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, kTotal - 1);
}

// ---------------------------------------------------------------------
// Spans.

TEST(TraceTest, DisabledSpansRecordNothing) {
  obs::SetTraceSink(TraceSink::kNone);
  obs::ClearSpans();
  {
    Span span("test.should_not_appear");
  }
  EXPECT_TRUE(obs::SnapshotSpans().empty());
}

TEST(TraceTest, NestedSpansRecordDepthAndCompletionOrder) {
  obs::SetTraceSink(TraceSink::kSilent);
  obs::ClearSpans();
  {
    Span outer("test.outer");
    {
      Span inner("test.", "inner");
    }
  }
  obs::SetTraceSink(TraceSink::kNone);
  const std::vector<SpanRecord> spans = obs::SnapshotSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner finishes first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[1].depth, 0);
  // The outer span contains the inner one in time.
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].duration_ns, spans[0].duration_ns);
  // Causal links: the inner span carries the outer one's id; the outer
  // span is a root.
  EXPECT_NE(spans[1].id, 0u);
  EXPECT_NE(spans[0].id, spans[1].id);
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  EXPECT_EQ(spans[1].parent_id, 0u);
  obs::ClearSpans();
  EXPECT_TRUE(obs::SnapshotSpans().empty());
}

TEST(TraceTest, RingBufferWrapsOldestFirstAndCountsDrops) {
  obs::SetSpanBufferCapacity(4);
  obs::Counter* dropped =
      Registry::Global().GetCounter("obs.spans_dropped");
  const uint64_t before = dropped->Value();
  obs::SetTraceSink(TraceSink::kSilent);
  for (int i = 0; i < 6; ++i) {
    Span span("test.wrap_" + std::to_string(i));
  }
  obs::SetTraceSink(TraceSink::kNone);
  const std::vector<SpanRecord> spans = obs::SnapshotSpans();
  ASSERT_EQ(spans.size(), 4u);  // bounded at capacity
  // Oldest surviving span first: 0 and 1 were overwritten.
  EXPECT_EQ(spans[0].name, "test.wrap_2");
  EXPECT_EQ(spans[3].name, "test.wrap_5");
  EXPECT_EQ(dropped->Value(), before + 2);
  obs::SetSpanBufferCapacity(obs::kDefaultSpanBufferCapacity);
}

TEST(TraceTest, SpanBufferCapacityClampsZeroToOne) {
  obs::SetSpanBufferCapacity(0);
  EXPECT_EQ(obs::SpanBufferCapacity(), 1u);
  obs::SetSpanBufferCapacity(obs::kDefaultSpanBufferCapacity);
  EXPECT_EQ(obs::SpanBufferCapacity(), obs::kDefaultSpanBufferCapacity);
}

TEST(TraceTest, ChromeTraceExportRoundTrips) {
  obs::SetSpanBufferCapacity(obs::kDefaultSpanBufferCapacity);
  obs::SetTraceSink(TraceSink::kSilent);
  {
    Span outer("test.chrome_outer");
    Span inner("test.chrome_inner");
  }
  obs::SetTraceSink(TraceSink::kNone);

  const std::string path = ::testing::TempDir() + "revise_chrome_trace.json";
  const Status status = obs::WriteChromeTrace(path);
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  StatusOr<Json> parsed = Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("displayTimeUnit")->AsString(), "ms");
  const Json& events = *parsed->Find("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  bool outer_found = false;
  for (const Json& event : events.array()) {
    EXPECT_EQ(event.Find("ph")->AsString(), "X");
    EXPECT_EQ(event.Find("cat")->AsString(), "revise");
    EXPECT_TRUE(event.Has("ts"));
    EXPECT_TRUE(event.Has("dur"));
    EXPECT_TRUE(event.Has("pid"));
    EXPECT_TRUE(event.Has("tid"));
    // Timestamps are rebased to the earliest span.
    EXPECT_GE(event.Find("ts")->AsDouble(), 0.0);
    if (event.Find("name")->AsString() == "test.chrome_outer") {
      outer_found = true;
      EXPECT_EQ(event.Find("args")->Find("depth")->AsInt(), 0);
      EXPECT_EQ(event.Find("args")->Find("parent_id")->AsUint(), 0u);
      EXPECT_NE(event.Find("args")->Find("id")->AsUint(), 0u);
    }
  }
  EXPECT_TRUE(outer_found);
  std::remove(path.c_str());
  obs::ClearSpans();
}

// ---------------------------------------------------------------------
// Causal span trees across the thread pool.

// Collects the spans of one traced parallel operation: a root span that
// fans out via ParallelMapRanges, each shard opening a span with a
// nested leaf.
std::vector<SpanRecord> RunTracedParallelOperation() {
  obs::SetTraceSink(TraceSink::kSilent);
  obs::ClearSpans();
  {
    Span root("test.causal_root");
    ParallelMapRanges<int>(64, 1, [](size_t begin, size_t end) {
      Span shard("test.causal_shard");
      Span leaf("test.causal_leaf");
      return static_cast<int>(end - begin);
    });
  }
  obs::SetTraceSink(TraceSink::kNone);
  return obs::SnapshotSpans();
}

// The regression this guards: spans opened inside pool-worker shard
// tasks used to start fresh roots on the worker thread.  With the
// pool-context hooks they attach to the operation that spawned the
// batch, so every thread count yields one single rooted tree.
TEST(TraceCausalityTest, PoolShardSpansFormOneRootedTree) {
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreadsOverride(threads);
    const std::vector<SpanRecord> spans = RunTracedParallelOperation();
    SetParallelThreadsOverride(0);
    ASSERT_GE(spans.size(), 3u) << "threads=" << threads;

    std::map<uint64_t, const SpanRecord*> by_id;
    uint64_t root_id = 0;
    size_t roots = 0;
    for (const SpanRecord& span : spans) {
      EXPECT_NE(span.id, 0u);
      EXPECT_TRUE(by_id.emplace(span.id, &span).second)
          << "duplicate span id " << span.id;
      if (span.parent_id == 0) {
        ++roots;
        root_id = span.id;
        EXPECT_EQ(span.name, "test.causal_root");
      }
    }
    EXPECT_EQ(roots, 1u) << "threads=" << threads;

    for (const SpanRecord& span : spans) {
      if (span.parent_id == 0) continue;
      // Every non-root span hangs off a recorded span, and the parent
      // links are stable: shards attach to the root, leaves to their
      // shard, with depths one below their parent's.
      const auto parent = by_id.find(span.parent_id);
      ASSERT_NE(parent, by_id.end()) << span.name;
      EXPECT_EQ(span.depth, parent->second->depth + 1) << span.name;
      if (span.name == "test.causal_shard") {
        EXPECT_EQ(span.parent_id, root_id);
      } else {
        ASSERT_EQ(span.name, "test.causal_leaf");
        EXPECT_EQ(parent->second->name, "test.causal_shard");
      }
    }
  }
}

TEST(TraceCausalityTest, ChromeExportEmitsFlowEventsForCrossThreadSpans) {
  SetParallelThreadsOverride(8);
  const std::vector<SpanRecord> spans = RunTracedParallelOperation();
  SetParallelThreadsOverride(0);

  // Whether any child ran on a different thread than its parent decides
  // whether flow events must appear (the pool may legally run every
  // shard on the submitting thread if it drains the batch first).
  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : spans) by_id.emplace(span.id, &span);
  std::set<uint64_t> cross_thread_children;
  for (const SpanRecord& span : spans) {
    const auto parent = by_id.find(span.parent_id);
    if (parent != by_id.end() && parent->second->tid != span.tid) {
      cross_thread_children.insert(span.id);
    }
  }

  const std::string path = ::testing::TempDir() + "revise_flow_trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path).ok());
  obs::ClearSpans();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  StatusOr<Json> parsed = Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // Flow events round-trip: every cross-thread child has a start ("s")
  // and finish ("f") pair keyed by its span id, and no other flow ids
  // appear.
  std::set<uint64_t> starts;
  std::set<uint64_t> finishes;
  for (const Json& event : parsed->Find("traceEvents")->array()) {
    const std::string ph = event.Find("ph")->AsString();
    if (ph != "s" && ph != "f") continue;
    EXPECT_EQ(event.Find("cat")->AsString(), "revise.flow");
    const uint64_t flow_id = event.Find("id")->AsUint();
    EXPECT_TRUE(cross_thread_children.count(flow_id) != 0) << flow_id;
    (ph == "s" ? starts : finishes).insert(flow_id);
  }
  EXPECT_EQ(starts, cross_thread_children);
  EXPECT_EQ(finishes, cross_thread_children);
}

// ---------------------------------------------------------------------
// Memory accounting.

TEST(MemoryTest, PeakRssIsPositiveAndMonotone) {
#ifdef __linux__
  const uint64_t first = obs::MemoryStats::PeakRssBytes();
  EXPECT_GT(first, 0u);
  // Touch a few megabytes so the high-water mark cannot go backwards
  // even if the kernel re-accounts pages.
  std::vector<char> ballast(8 << 20, 1);
  EXPECT_GT(ballast.back(), 0);
  const uint64_t second = obs::MemoryStats::PeakRssBytes();
  EXPECT_GE(second, first);
#else
  EXPECT_EQ(obs::MemoryStats::PeakRssBytes(), 0u);
#endif
}

TEST(MemoryTest, ToJsonCarriesRssAndByteGauges) {
  REVISE_OBS_GAUGE("mem.test_bytes").Set(123);
  const Json j = obs::MemoryStats::ToJson();
  ASSERT_TRUE(j.Has("peak_rss_bytes"));
  ASSERT_TRUE(j.Has("current_rss_bytes"));
  ASSERT_TRUE(j.Has("mem.test_bytes"));
  EXPECT_EQ(j.Find("mem.test_bytes")->AsInt(), 123);
#ifdef __linux__
  EXPECT_GE(j.Find("peak_rss_bytes")->AsUint(),
            j.Find("current_rss_bytes")->AsUint());
#endif
  REVISE_OBS_GAUGE("mem.test_bytes").Set(0);
}

// ---------------------------------------------------------------------
// Json.

TEST(JsonTest, DumpScalars) {
  EXPECT_EQ(Json(nullptr).Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(-3).Dump(), "-3");
  EXPECT_EQ(Json(uint64_t{18446744073709551615u}).Dump(),
            "18446744073709551615");
  EXPECT_EQ(Json("hi \"there\"\n").Dump(), "\"hi \\\"there\\\"\\n\"");
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json j = Json::MakeObject();
  j["zebra"] = 1;
  j["apple"] = 2;
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.object()[0].first, "zebra");
  EXPECT_EQ(j.object()[1].first, "apple");
  EXPECT_EQ(j.Dump(), "{\"zebra\": 1, \"apple\": 2}");
}

TEST(JsonTest, ParseDumpRoundTrip) {
  const std::string text =
      "{\"name\": \"bench\", \"values\": [1, 2.5, -7, true, null], "
      "\"nested\": {\"k\": \"v\"}, \"big\": 18446744073709551615}";
  StatusOr<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), text);
  // Round-trip again through the pretty printer.
  StatusOr<Json> reparsed = Json::Parse(parsed->Dump(2));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(*reparsed == *parsed);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
}

// ---------------------------------------------------------------------
// Report schema.

TEST(ReportTest, ToJsonMatchesSchema) {
  obs::Report report("schema_check");
  report.SetMeta("n", 12);
  report.AddTable("sizes", {"m", "size"});
  report.AddRow("sizes", {1, uint64_t{10}});
  report.AddRow("sizes", {2, uint64_t{20}});
  report.AddSeries("growth", {10.0, 20.0}, "polynomial");
  // Ensure at least one counter, histogram sample, and span exist in the
  // snapshot.
  REVISE_OBS_COUNTER("test.report_counter").Increment();
  REVISE_OBS_HISTOGRAM("test.report_hist").Record(7);
  obs::SetTraceSink(TraceSink::kSilent);
  { Span span("test.report_span"); }
  obs::SetTraceSink(TraceSink::kNone);

  const Json j = report.ToJson();
  // Fixed top-level field order (schema v2.1: additive over v2 — the
  // minor stamp right after the version, profiles appended last).
  const std::vector<std::string> expected_keys = {
      "schema_version", "schema_minor", "name",     "manifest",
      "meta",           "tables",       "series",   "counters",
      "gauges",         "histograms",   "memory",   "spans",
      "profiles"};
  ASSERT_EQ(j.object().size(), expected_keys.size());
  for (size_t i = 0; i < expected_keys.size(); ++i) {
    EXPECT_EQ(j.object()[i].first, expected_keys[i]);
  }
  EXPECT_EQ(j.Find("schema_version")->AsInt(), obs::kSchemaVersion);
  EXPECT_EQ(j.Find("schema_minor")->AsInt(), obs::kSchemaMinor);
  EXPECT_TRUE(j.Find("profiles")->is_array());
  EXPECT_EQ(j.Find("name")->AsString(), "schema_check");
  EXPECT_EQ(j.Find("meta")->Find("n")->AsInt(), 12);

  // The manifest pins the build and environment the run came from.
  const Json& manifest = *j.Find("manifest");
  EXPECT_TRUE(manifest.Has("git_sha"));
  EXPECT_TRUE(manifest.Has("compiler"));
  EXPECT_TRUE(manifest.Has("build_type"));
  EXPECT_TRUE(manifest.Has("threads"));
  EXPECT_TRUE(manifest.Has("hardware_threads"));
  // v2.2: the process-start anchor and derived uptime.
  EXPECT_GT(manifest.Find("process_start_ns")->AsInt(), 0);
  EXPECT_EQ(manifest.Find("process_start_ns")->AsInt(),
            obs::ProcessStartNanos());
  EXPECT_GE(manifest.Find("uptime_seconds")->AsDouble(), 0.0);
  EXPECT_TRUE(manifest.Find("env")->is_object());

  const Json& tables = *j.Find("tables");
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables.at(0).Find("name")->AsString(), "sizes");
  ASSERT_EQ(tables.at(0).Find("columns")->size(), 2u);
  ASSERT_EQ(tables.at(0).Find("rows")->size(), 2u);
  EXPECT_EQ(tables.at(0).Find("rows")->at(1).at(1).AsUint(), 20u);

  const Json& series = *j.Find("series");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series.at(0).Find("name")->AsString(), "growth");
  EXPECT_EQ(series.at(0).Find("verdict")->AsString(), "polynomial");
  ASSERT_EQ(series.at(0).Find("values")->size(), 2u);

  EXPECT_TRUE(j.Find("counters")->Has("test.report_counter"));

  // Histograms carry the summary statistics, not raw buckets.
  const Json* hist = j.Find("histograms")->Find("test.report_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->Find("count")->AsUint(), 1u);
  for (const char* field : {"sum", "min", "max", "mean", "p50", "p90",
                            "p99"}) {
    EXPECT_TRUE(hist->Has(field)) << field;
  }

  EXPECT_TRUE(j.Find("memory")->Has("peak_rss_bytes"));

  bool span_found = false;
  for (const Json& span : j.Find("spans")->array()) {
    if (span.Find("name")->AsString() == "test.report_span") {
      span_found = true;
      EXPECT_TRUE(span.Has("depth"));
      EXPECT_TRUE(span.Has("tid"));
      EXPECT_TRUE(span.Has("start_ns"));
      EXPECT_TRUE(span.Has("duration_ns"));
      EXPECT_NE(span.Find("id")->AsUint(), 0u);
      EXPECT_TRUE(span.Has("parent_id"));
    }
  }
  EXPECT_TRUE(span_found);

  // The document survives a serialize/parse round trip.
  StatusOr<Json> reparsed = Json::Parse(j.Dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(*reparsed == j);
  obs::ClearSpans();
}

// ---------------------------------------------------------------------
// Soft deadline through SatContext.

// Pigeonhole clauses (holes + 1 pigeons into `holes` holes): UNSAT with an
// exponential-resolution proof, so the search reliably outlives a
// microscopic deadline.
void AddPigeonhole(SatContext* context, int holes) {
  const int pigeons = holes + 1;
  sat::Solver& solver = context->solver();
  solver.EnsureVarCount(pigeons * holes);
  auto var = [&](int p, int h) { return p * holes + h; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(sat::PosLit(var(p, h)));
    ASSERT_TRUE(solver.AddClause(std::move(clause)));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(solver.AddClause(
            {sat::NegLit(var(p1, h)), sat::NegLit(var(p2, h))}));
      }
    }
  }
}

TEST(DeadlineTest, TinyDeadlineTimesOutAndReportsCounter) {
  obs::Counter* timeouts =
      Registry::Global().GetCounter("solve.timed_out");
  const uint64_t before = timeouts->Value();
  SatContext context;
  AddPigeonhole(&context, 10);
  context.set_soft_deadline_seconds(1e-6);
  EXPECT_FALSE(context.Solve());
  EXPECT_TRUE(context.timed_out());
  EXPECT_EQ(timeouts->Value(), before + 1);
}

TEST(DeadlineTest, SolveOrDeadlineReturnsExplicitStatus) {
  SatContext context;
  AddPigeonhole(&context, 10);
  context.set_soft_deadline_seconds(1e-6);
  StatusOr<bool> result = context.SolveOrDeadline();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, NoDeadlineSolvesNormally) {
  SatContext context;
  AddPigeonhole(&context, 5);
  EXPECT_FALSE(context.Solve());  // pigeonhole is UNSAT
  EXPECT_FALSE(context.timed_out());
  StatusOr<bool> result = context.SolveOrDeadline();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST(DeadlineTest, GenerousDeadlineDoesNotTrigger) {
  SatContext context;
  AddPigeonhole(&context, 4);
  context.set_soft_deadline_seconds(3600.0);
  EXPECT_FALSE(context.Solve());
  EXPECT_FALSE(context.timed_out());
}

}  // namespace
}  // namespace revise
