// Tests for the observability layer: counter/gauge registry, scoped
// tracing spans, the JSON document model, the report schema, and the
// soft-deadline path through SatContext.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sat/literal.h"
#include "solve/sat_context.h"
#include "util/status.h"

namespace revise {
namespace {

using obs::Json;
using obs::Registry;
using obs::Span;
using obs::SpanRecord;
using obs::TraceSink;

// ---------------------------------------------------------------------
// Counter / gauge registry.

TEST(MetricsTest, CounterIncrementAndValue) {
  obs::Counter* c = Registry::Global().GetCounter("test.counter_basic");
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(MetricsTest, GetCounterInternsByName) {
  obs::Counter* a = Registry::Global().GetCounter("test.interned");
  obs::Counter* b = Registry::Global().GetCounter("test.interned");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), "test.interned");
  // The macro resolves to the same instrument.
  REVISE_OBS_COUNTER("test.interned").Increment();
  EXPECT_GE(a->Value(), 1u);
}

TEST(MetricsTest, SnapshotContainsRegisteredCounter) {
  obs::Counter* c = Registry::Global().GetCounter("test.snapshot_me");
  c->Reset();
  c->Increment(7);
  bool found = false;
  const auto snapshot = Registry::Global().SnapshotCounters();
  for (const auto& [name, value] : snapshot) {
    if (name == "test.snapshot_me") {
      found = true;
      EXPECT_EQ(value, 7u);
    }
  }
  EXPECT_TRUE(found);
  // Snapshots are name-sorted.
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
  }
}

TEST(MetricsTest, GaugeSetAndUpdateMax) {
  obs::Gauge* g = Registry::Global().GetGauge("test.gauge");
  g->Reset();
  g->Set(10);
  EXPECT_EQ(g->Value(), 10);
  g->UpdateMax(5);  // no effect: 5 < 10
  EXPECT_EQ(g->Value(), 10);
  g->UpdateMax(20);
  EXPECT_EQ(g->Value(), 20);
}

TEST(MetricsTest, ConcurrentIncrementsAreNotLost) {
  obs::Counter* c = Registry::Global().GetCounter("test.threads");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------
// Spans.

TEST(TraceTest, DisabledSpansRecordNothing) {
  obs::SetTraceSink(TraceSink::kNone);
  obs::ClearSpans();
  {
    Span span("test.should_not_appear");
  }
  EXPECT_TRUE(obs::SnapshotSpans().empty());
}

TEST(TraceTest, NestedSpansRecordDepthAndCompletionOrder) {
  obs::SetTraceSink(TraceSink::kSilent);
  obs::ClearSpans();
  {
    Span outer("test.outer");
    {
      Span inner("test.", "inner");
    }
  }
  obs::SetTraceSink(TraceSink::kNone);
  const std::vector<SpanRecord> spans = obs::SnapshotSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner finishes first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[1].depth, 0);
  // The outer span contains the inner one in time.
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].duration_ns, spans[0].duration_ns);
  obs::ClearSpans();
  EXPECT_TRUE(obs::SnapshotSpans().empty());
}

// ---------------------------------------------------------------------
// Json.

TEST(JsonTest, DumpScalars) {
  EXPECT_EQ(Json(nullptr).Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(-3).Dump(), "-3");
  EXPECT_EQ(Json(uint64_t{18446744073709551615u}).Dump(),
            "18446744073709551615");
  EXPECT_EQ(Json("hi \"there\"\n").Dump(), "\"hi \\\"there\\\"\\n\"");
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json j = Json::MakeObject();
  j["zebra"] = 1;
  j["apple"] = 2;
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.object()[0].first, "zebra");
  EXPECT_EQ(j.object()[1].first, "apple");
  EXPECT_EQ(j.Dump(), "{\"zebra\": 1, \"apple\": 2}");
}

TEST(JsonTest, ParseDumpRoundTrip) {
  const std::string text =
      "{\"name\": \"bench\", \"values\": [1, 2.5, -7, true, null], "
      "\"nested\": {\"k\": \"v\"}, \"big\": 18446744073709551615}";
  StatusOr<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), text);
  // Round-trip again through the pretty printer.
  StatusOr<Json> reparsed = Json::Parse(parsed->Dump(2));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(*reparsed == *parsed);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
}

// ---------------------------------------------------------------------
// Report schema.

TEST(ReportTest, ToJsonMatchesSchema) {
  obs::Report report("schema_check");
  report.SetMeta("n", 12);
  report.AddTable("sizes", {"m", "size"});
  report.AddRow("sizes", {1, uint64_t{10}});
  report.AddRow("sizes", {2, uint64_t{20}});
  report.AddSeries("growth", {10.0, 20.0}, "polynomial");
  // Ensure at least one counter and one span exist in the snapshot.
  REVISE_OBS_COUNTER("test.report_counter").Increment();
  obs::SetTraceSink(TraceSink::kSilent);
  { Span span("test.report_span"); }
  obs::SetTraceSink(TraceSink::kNone);

  const Json j = report.ToJson();
  // Fixed top-level field order.
  const std::vector<std::string> expected_keys = {
      "schema_version", "name",     "meta", "tables",
      "series",         "counters", "gauges", "spans"};
  ASSERT_EQ(j.object().size(), expected_keys.size());
  for (size_t i = 0; i < expected_keys.size(); ++i) {
    EXPECT_EQ(j.object()[i].first, expected_keys[i]);
  }
  EXPECT_EQ(j.Find("schema_version")->AsInt(), obs::kSchemaVersion);
  EXPECT_EQ(j.Find("name")->AsString(), "schema_check");
  EXPECT_EQ(j.Find("meta")->Find("n")->AsInt(), 12);

  const Json& tables = *j.Find("tables");
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables.at(0).Find("name")->AsString(), "sizes");
  ASSERT_EQ(tables.at(0).Find("columns")->size(), 2u);
  ASSERT_EQ(tables.at(0).Find("rows")->size(), 2u);
  EXPECT_EQ(tables.at(0).Find("rows")->at(1).at(1).AsUint(), 20u);

  const Json& series = *j.Find("series");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series.at(0).Find("name")->AsString(), "growth");
  EXPECT_EQ(series.at(0).Find("verdict")->AsString(), "polynomial");
  ASSERT_EQ(series.at(0).Find("values")->size(), 2u);

  EXPECT_TRUE(j.Find("counters")->Has("test.report_counter"));
  bool span_found = false;
  for (const Json& span : j.Find("spans")->array()) {
    if (span.Find("name")->AsString() == "test.report_span") {
      span_found = true;
      EXPECT_TRUE(span.Has("depth"));
      EXPECT_TRUE(span.Has("start_ns"));
      EXPECT_TRUE(span.Has("duration_ns"));
    }
  }
  EXPECT_TRUE(span_found);

  // The document survives a serialize/parse round trip.
  StatusOr<Json> reparsed = Json::Parse(j.Dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(*reparsed == j);
  obs::ClearSpans();
}

// ---------------------------------------------------------------------
// Soft deadline through SatContext.

// Pigeonhole clauses (holes + 1 pigeons into `holes` holes): UNSAT with an
// exponential-resolution proof, so the search reliably outlives a
// microscopic deadline.
void AddPigeonhole(SatContext* context, int holes) {
  const int pigeons = holes + 1;
  sat::Solver& solver = context->solver();
  solver.EnsureVarCount(pigeons * holes);
  auto var = [&](int p, int h) { return p * holes + h; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(sat::PosLit(var(p, h)));
    ASSERT_TRUE(solver.AddClause(std::move(clause)));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(solver.AddClause(
            {sat::NegLit(var(p1, h)), sat::NegLit(var(p2, h))}));
      }
    }
  }
}

TEST(DeadlineTest, TinyDeadlineTimesOutAndReportsCounter) {
  obs::Counter* timeouts =
      Registry::Global().GetCounter("solve.timed_out");
  const uint64_t before = timeouts->Value();
  SatContext context;
  AddPigeonhole(&context, 10);
  context.set_soft_deadline_seconds(1e-6);
  EXPECT_FALSE(context.Solve());
  EXPECT_TRUE(context.timed_out());
  EXPECT_EQ(timeouts->Value(), before + 1);
}

TEST(DeadlineTest, SolveOrDeadlineReturnsExplicitStatus) {
  SatContext context;
  AddPigeonhole(&context, 10);
  context.set_soft_deadline_seconds(1e-6);
  StatusOr<bool> result = context.SolveOrDeadline();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, NoDeadlineSolvesNormally) {
  SatContext context;
  AddPigeonhole(&context, 5);
  EXPECT_FALSE(context.Solve());  // pigeonhole is UNSAT
  EXPECT_FALSE(context.timed_out());
  StatusOr<bool> result = context.SolveOrDeadline();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST(DeadlineTest, GenerousDeadlineDoesNotTrigger) {
  SatContext context;
  AddPigeonhole(&context, 4);
  context.set_soft_deadline_seconds(3600.0);
  EXPECT_FALSE(context.Solve());
  EXPECT_FALSE(context.timed_out());
}

}  // namespace
}  // namespace revise
