// Live-socket tests for the statsz server (obs/statsz.h): every
// endpoint over a real HTTP/1.0 exchange (util::HttpGet), scrape
// round-trips against the registry and the JSON snapshot twin, the
// sans-socket handler dispatch, the process-wide lifecycle, and
// concurrent clients at 1, 2, and 8 threads (the TSan CI job runs this
// binary, so the accept/worker handoff is exercised under the race
// detector).

#include "obs/statsz.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "util/net.h"
#include "util/parallel.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#endif

namespace revise::obs {
namespace {

struct SplitResponse {
  std::string head;
  std::string body;
};

SplitResponse Split(const std::string& response) {
  const size_t sep = response.find("\r\n\r\n");
  if (sep == std::string::npos) return {response, std::string()};
  return {response.substr(0, sep), response.substr(sep + 4)};
}

// Starts an ephemeral-port server, skipping the test on platforms
// without BSD sockets (util/net.h reports kUnimplemented there).
#define START_SERVER_OR_SKIP(server_var, num_workers)                   \
  std::unique_ptr<StatszServer> server_var;                             \
  {                                                                     \
    StatszOptions statsz_options;                                       \
    statsz_options.port = 0;                                            \
    statsz_options.workers = (num_workers);                             \
    statsz_options.announce = false;                                    \
    StatusOr<std::unique_ptr<StatszServer>> started =                   \
        StatszServer::Start(statsz_options);                            \
    if (!started.ok() &&                                                \
        started.status().code() == StatusCode::kUnimplemented) {        \
      GTEST_SKIP() << "no socket support on this platform";             \
    }                                                                   \
    ASSERT_TRUE(started.ok()) << started.status().ToString();           \
    server_var = std::move(*started);                                   \
  }                                                                     \
  ASSERT_NE(server_var->port(), 0)

TEST(StatszServerTest, HealthzServesOk) {
  START_SERVER_OR_SKIP(server, 1);
  StatusOr<std::string> response = util::HttpGet(server->port(), "/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const SplitResponse split = Split(*response);
  EXPECT_EQ(split.head.rfind("HTTP/1.0 200", 0), 0u) << split.head;
  EXPECT_EQ(split.body, "ok\n");
}

TEST(StatszServerTest, UnknownPathIs404) {
  START_SERVER_OR_SKIP(server, 1);
  StatusOr<std::string> response = util::HttpGet(server->port(), "/nope");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(Split(*response).head.rfind("HTTP/1.0 404", 0), 0u);
}

TEST(StatszServerTest, QueryStringIsStripped) {
  START_SERVER_OR_SKIP(server, 1);
  StatusOr<std::string> response =
      util::HttpGet(server->port(), "/healthz?probe=1");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(Split(*response).body, "ok\n");
}

TEST(StatszServerTest, MetricsScrapeRoundTripsAgainstRegistry) {
  Registry::Global().GetGauge("statsz.test_roundtrip")->Set(31337);
  Registry::Global().GetCounter("statsz.test_events")->Increment(5);
  Registry::Global().GetHistogram("statsz.test_sizes")->Record(3);

  START_SERVER_OR_SKIP(server, 2);
  StatusOr<std::string> response = util::HttpGet(server->port(), "/metrics");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const SplitResponse split = Split(*response);
  EXPECT_EQ(split.head.rfind("HTTP/1.0 200", 0), 0u) << split.head;
  EXPECT_NE(split.head.find("application/openmetrics-text; version=1.0.0"),
            std::string::npos)
      << split.head;

  StatusOr<ParsedMetrics> parsed = ParseOpenMetrics(split.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->saw_eof);
  EXPECT_EQ(parsed->gauges.at("statsz_test_roundtrip"), 31337);
  EXPECT_GE(parsed->counters.at("statsz_test_events"), 5u);
  EXPECT_GE(parsed->histograms.at("statsz_test_sizes").count, 1u);
  // The scrape and the in-process JSON twin must agree on values.
  const Json twin = MetricsSnapshotJson();
  EXPECT_EQ(twin.Find("gauges")->Find("statsz.test_roundtrip")->AsInt(),
            parsed->gauges.at("statsz_test_roundtrip"));
  // The server publishes its own bound port.
  EXPECT_EQ(parsed->gauges.at("statsz_port"),
            static_cast<int64_t>(server->port()));
}

TEST(StatszServerTest, MetricsJsonEndpointParses) {
  Registry::Global().GetGauge("statsz.test_roundtrip")->Set(-99);
  START_SERVER_OR_SKIP(server, 1);
  StatusOr<std::string> response =
      util::HttpGet(server->port(), "/metrics.json");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const SplitResponse split = Split(*response);
  EXPECT_NE(split.head.find("application/json"), std::string::npos);
  StatusOr<Json> doc = Json::Parse(split.body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("schema_version")->AsInt(), 2);
  EXPECT_EQ(doc->Find("gauges")->Find("statsz.test_roundtrip")->AsInt(), -99);
}

TEST(StatszServerTest, StatuszCarriesManifestAndThreads) {
  START_SERVER_OR_SKIP(server, 1);
  StatusOr<std::string> response = util::HttpGet(server->port(), "/statusz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  StatusOr<Json> doc = Json::Parse(Split(*response).body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->Has("manifest"));
  EXPECT_TRUE(doc->Find("manifest")->Has("git_sha"));
  EXPECT_GT(doc->Find("pid")->AsInt(), 0);
  EXPECT_GE(doc->Find("uptime_seconds")->AsDouble(), 0.0);
  EXPECT_TRUE(doc->Find("threads")->Has("pool_workers"));
  EXPECT_TRUE(doc->Find("memory")->Has("peak_rss_bytes"));
  EXPECT_TRUE(doc->Find("statsz")->Has("requests"));
}

TEST(StatszServerTest, TracezAndProfilezAreWellFormed) {
  START_SERVER_OR_SKIP(server, 1);
  StatusOr<std::string> tracez = util::HttpGet(server->port(), "/tracez");
  ASSERT_TRUE(tracez.ok()) << tracez.status().ToString();
  StatusOr<Json> trace_doc = Json::Parse(Split(*tracez).body);
  ASSERT_TRUE(trace_doc.ok()) << trace_doc.status().ToString();
  EXPECT_TRUE(trace_doc->Has("flight_recorder"));

  StatusOr<std::string> profilez = util::HttpGet(server->port(), "/profilez");
  ASSERT_TRUE(profilez.ok()) << profilez.status().ToString();
  StatusOr<Json> profile_doc = Json::Parse(Split(*profilez).body);
  ASSERT_TRUE(profile_doc.ok()) << profile_doc.status().ToString();
  EXPECT_TRUE(profile_doc->Has("profiles"));
  EXPECT_TRUE(profile_doc->Has("profiling_enabled"));
}

TEST(StatszServerTest, StopIsIdempotent) {
  START_SERVER_OR_SKIP(server, 2);
  server->Stop();
  server->Stop();
  // After Stop the listener is closed; a fresh server can bind again.
  StatszOptions options;
  options.announce = false;
  StatusOr<std::unique_ptr<StatszServer>> second =
      StatszServer::Start(options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
}

// The endpoint dispatch is testable without sockets.
TEST(StatszHandlerTest, DispatchCoversEveryEndpoint) {
  EXPECT_EQ(HandleStatszPath("/healthz").code, 200);
  EXPECT_EQ(HandleStatszPath("/").code, 200);
  EXPECT_EQ(HandleStatszPath("/metrics").code, 200);
  EXPECT_EQ(HandleStatszPath("/metrics.json").code, 200);
  EXPECT_EQ(HandleStatszPath("/statusz").code, 200);
  EXPECT_EQ(HandleStatszPath("/profilez").code, 200);
  EXPECT_EQ(HandleStatszPath("/tracez").code, 200);
  EXPECT_EQ(HandleStatszPath("/missing").code, 404);

  const HttpResponse metrics = HandleStatszPath("/metrics");
  EXPECT_EQ(metrics.content_type.rfind("application/openmetrics-text", 0),
            0u);
  ASSERT_GE(metrics.body.size(), 6u);
  EXPECT_EQ(metrics.body.substr(metrics.body.size() - 6), "# EOF\n");
}

TEST(StatszGlobalTest, GlobalLifecycleIsExclusive) {
  StopGlobalStatsz();
  StatszOptions options;
  options.announce = false;
  const Status first = StartGlobalStatsz(options);
  if (first.code() == StatusCode::kUnimplemented) {
    GTEST_SKIP() << "no socket support on this platform";
  }
  ASSERT_TRUE(first.ok()) << first.ToString();
  ASSERT_NE(GlobalStatsz(), nullptr);
  const Status second = StartGlobalStatsz(options);
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
  StopGlobalStatsz();
  EXPECT_EQ(GlobalStatsz(), nullptr);
}

// Each client thread issues a burst of scrapes across the endpoint mix;
// every request must come back as a complete HTTP response (200s, or
// 503 when the bounded queue sheds load — never a hang or a dropped
// connection).
void ScrapeConcurrently(size_t client_threads) {
  START_SERVER_OR_SKIP(server, 2);
  const uint16_t port = server->port();
  constexpr int kRequestsPerThread = 16;
  const char* const kPaths[] = {"/metrics", "/healthz", "/statusz",
                                "/tracez"};
  std::atomic<int> complete{0};
  {
    std::vector<BackgroundThread> clients;
    clients.reserve(client_threads);
    for (size_t t = 0; t < client_threads; ++t) {
      clients.emplace_back([port, t, &complete, &kPaths] {
        for (int i = 0; i < kRequestsPerThread; ++i) {
          const char* path = kPaths[(t + static_cast<size_t>(i)) % 4];
          StatusOr<std::string> response = util::HttpGet(port, path);
          if (response.ok() && response->rfind("HTTP/1.0 ", 0) == 0) {
            complete.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (BackgroundThread& client : clients) client.Join();
  }
  EXPECT_EQ(complete.load(),
            static_cast<int>(client_threads) * kRequestsPerThread);
}

TEST(StatszConcurrencyTest, OneClientThread) { ScrapeConcurrently(1); }
TEST(StatszConcurrencyTest, TwoClientThreads) { ScrapeConcurrently(2); }
TEST(StatszConcurrencyTest, EightClientThreads) { ScrapeConcurrently(8); }

#if defined(__unix__) || defined(__APPLE__)

// Deadline behavior of the util/net.h read paths: a client that connects
// and then goes silent, and a responder that drips bytes forever, must
// both cost the caller one bounded deadline — not a worker pinned for
// the life of the peer.

TEST(NetDeadlineTest, SilentClientTimesOutQuickly) {
  StatusOr<util::TcpListener> listener = util::ListenTcpLoopback(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  // A raw client that connects and never writes a byte.
  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(listener->port);
  ASSERT_EQ(::connect(client, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  StatusOr<int> accepted = util::AcceptConnection(listener->fd, 1000);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();

  const auto start = std::chrono::steady_clock::now();
  StatusOr<std::string> head =
      util::ReadHttpRequestHead(*accepted, 8192, /*timeout_ms=*/300);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(head.ok());
  EXPECT_EQ(head.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed_ms, 250);
  EXPECT_LT(elapsed_ms, 2000) << "deadline did not bound the read";

  util::CloseSocket(*accepted);
  util::CloseSocket(client);
  util::CloseSocket(listener->fd);
}

TEST(NetDeadlineTest, SlowDripResponderHitsOverallDeadline) {
  StatusOr<util::TcpListener> listener = util::ListenTcpLoopback(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const int listen_fd = listener->fd;

  // A responder that answers one byte every 50 ms: each individual poll
  // sees progress, so only an *overall* deadline can stop the call.
  BackgroundThread responder([listen_fd] {
    StatusOr<int> accepted = util::AcceptConnection(listen_fd, 5000);
    if (!accepted.ok()) return;
    (void)util::ReadHttpRequestHead(*accepted, 8192, 1000);
    for (int i = 0; i < 80; ++i) {
      if (!util::SendAll(*accepted, "x").ok()) break;  // client hung up
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    util::CloseSocket(*accepted);
  });

  const auto start = std::chrono::steady_clock::now();
  StatusOr<std::string> response =
      util::HttpGet(listener->port, "/", /*timeout_ms=*/300);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed_ms, 250);
  EXPECT_LT(elapsed_ms, 2000)
      << "per-poll re-arming let the drip stretch the deadline";

  responder.Join();
  util::CloseSocket(listen_fd);
}

#endif  // sockets

}  // namespace
}  // namespace revise::obs
