// Tests for the .rkb artifact subsystem (src/artifact/): the checksum
// primitive, the container round-trip on both read paths, corruption
// rejection (bad magic, bad version, truncation, arbitrary bit flips),
// knowledge-base round-trips across operators / strategies / fuzz
// scenario shapes and thread counts, and the committed golden canary.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "artifact/artifact.h"
#include "artifact/checksum.h"
#include "artifact/kb_image.h"
#include "core/kb_artifact.h"
#include "core/knowledge_base.h"
#include "fuzz/scenario.h"
#include "logic/parser.h"
#include "solve/model_cache.h"
#include "util/parallel.h"

namespace revise::artifact {
namespace {

std::filesystem::path TempPath(const std::string& stem) {
  return std::filesystem::temp_directory_path() /
         (stem + "_" + std::to_string(::getpid()) + ".rkb");
}

std::vector<uint8_t> ReadAll(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

// --- checksum ----------------------------------------------------------

TEST(Crc64Test, KnownCheckValue) {
  // The CRC-64/XZ check value from the catalogue of parametrised CRCs.
  EXPECT_EQ(Crc64("123456789", 9), 0x995dc9bbdf1939faull);
}

TEST(Crc64Test, EmptyAndIncrementalAgree) {
  EXPECT_EQ(Crc64(nullptr, 0), 0u);
  const std::string data = "the size of a revised knowledge base";
  uint64_t state = Crc64Init();
  state = Crc64Update(state, data.data(), 10);
  state = Crc64Update(state, data.data() + 10, data.size() - 10);
  EXPECT_EQ(Crc64Final(state), Crc64(data.data(), data.size()));
}

TEST(Crc64Test, SensitiveToEveryBit) {
  const std::string data = "abcdefgh";
  const uint64_t reference = Crc64(data.data(), data.size());
  for (size_t i = 0; i < data.size() * 8; ++i) {
    std::string flipped = data;
    flipped[i / 8] = static_cast<char>(flipped[i / 8] ^ (1 << (i % 8)));
    EXPECT_NE(Crc64(flipped.data(), flipped.size()), reference) << i;
  }
}

// --- byte codec --------------------------------------------------------

TEST(ByteCodecTest, RoundTrip) {
  ByteWriter writer;
  writer.U8(0xab);
  writer.U32(0xdeadbeef);
  writer.U64(0x0123456789abcdefull);
  writer.String("letters");
  std::vector<uint8_t> bytes = std::move(writer).Take();

  ByteReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.U8(), 0xab);
  EXPECT_EQ(reader.U32(), 0xdeadbeefu);
  EXPECT_EQ(reader.U64(), 0x0123456789abcdefull);
  std::string s;
  EXPECT_TRUE(reader.String(&s));
  EXPECT_EQ(s, "letters");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteCodecTest, OverrunIsSticky) {
  ByteWriter writer;
  writer.U32(7);
  std::vector<uint8_t> bytes = std::move(writer).Take();
  ByteReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.U32(), 7u);
  EXPECT_EQ(reader.U64(), 0u);  // overrun
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.U8(), 0u);  // still failed
  EXPECT_FALSE(reader.AtEnd());
}

// --- container ---------------------------------------------------------

std::vector<uint8_t> TwoSectionImage() {
  ArtifactWriter writer;
  writer.AddSection(SectionId::kVocabulary, {1, 2, 3});
  writer.AddSection(SectionId::kKbMeta,
                    std::vector<uint8_t>(100, 0x5a));
  return writer.Assemble();
}

TEST(ArtifactFileTest, AssembleAndReopen) {
  StatusOr<ArtifactFile> file = ArtifactFile::FromBytes(TwoSectionImage());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->format_version(), kFormatVersion);
  EXPECT_FALSE(file->mapped());
  ASSERT_EQ(file->sections().size(), 2u);
  const ArtifactFile::Section* vocab =
      file->Find(SectionId::kVocabulary);
  ASSERT_NE(vocab, nullptr);
  EXPECT_EQ(vocab->size, 3u);
  EXPECT_EQ(vocab->offset % kSectionAlignment, 0u);
  const uint8_t* data = file->SectionData(*vocab);
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[2], 3);
  EXPECT_EQ(file->Find(SectionId::kBdd), nullptr);
}

TEST(ArtifactFileTest, MappedAndStreamedAgree) {
  const std::filesystem::path path = TempPath("artifact_both_paths");
  ArtifactWriter writer;
  writer.AddSection(SectionId::kModelRows,
                    std::vector<uint8_t>(256, 0x11));
  ASSERT_TRUE(writer.WriteToFile(path.string()).ok());

  StatusOr<ArtifactFile> mapped = ArtifactFile::Open(path.string());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  ::setenv("REVISE_ARTIFACT_MMAP", "0", 1);
  StatusOr<ArtifactFile> streamed = ArtifactFile::Open(path.string());
  ::unsetenv("REVISE_ARTIFACT_MMAP");
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  EXPECT_FALSE(streamed->mapped());
  EXPECT_EQ(mapped->file_crc(), streamed->file_crc());
  const ArtifactFile::Section* a = mapped->Find(SectionId::kModelRows);
  const ArtifactFile::Section* b = streamed->Find(SectionId::kModelRows);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(std::vector<uint8_t>(mapped->SectionData(*a),
                                 mapped->SectionData(*a) + a->size),
            std::vector<uint8_t>(streamed->SectionData(*b),
                                 streamed->SectionData(*b) + b->size));
  std::filesystem::remove(path);
}

TEST(ArtifactFileTest, RejectsBadMagic) {
  std::vector<uint8_t> bytes = TwoSectionImage();
  bytes[0] = 'X';
  const StatusOr<ArtifactFile> file =
      ArtifactFile::FromBytes(std::move(bytes));
  ASSERT_FALSE(file.ok());
  EXPECT_NE(file.status().ToString().find("magic"), std::string::npos);
}

TEST(ArtifactFileTest, RejectsGenuinelyNewerVersion) {
  // A well-formed file of a future version (checksum recomputed) must be
  // reported as a version problem, not a checksum one: the header layout
  // is frozen exactly so this diagnosis works across versions.
  std::vector<uint8_t> bytes = TwoSectionImage();
  bytes[kVersionOffset] = static_cast<uint8_t>(kFormatVersion + 1);
  for (size_t i = 0; i < 8; ++i) bytes[kFileCrcOffset + i] = 0;
  const uint64_t crc = Crc64(bytes.data(), bytes.size());
  for (size_t i = 0; i < 8; ++i) {
    bytes[kFileCrcOffset + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  const StatusOr<ArtifactFile> file =
      ArtifactFile::FromBytes(std::move(bytes));
  ASSERT_FALSE(file.ok());
  EXPECT_NE(file.status().ToString().find("version"), std::string::npos);
}

TEST(ArtifactFileTest, FlippedVersionByteIsAChecksumError) {
  std::vector<uint8_t> bytes = TwoSectionImage();
  bytes[kVersionOffset] ^= 0x02;  // flipped in transit, CRC not fixed up
  const StatusOr<ArtifactFile> file =
      ArtifactFile::FromBytes(std::move(bytes));
  ASSERT_FALSE(file.ok());
  EXPECT_NE(file.status().ToString().find("checksum"), std::string::npos);
}

TEST(ArtifactFileTest, RejectsEveryTruncation) {
  const std::vector<uint8_t> bytes = TwoSectionImage();
  for (size_t keep = 0; keep < bytes.size(); keep += 13) {
    StatusOr<ArtifactFile> file = ArtifactFile::FromBytes(
        std::vector<uint8_t>(bytes.begin(), bytes.begin() + keep));
    EXPECT_FALSE(file.ok()) << "accepted a " << keep << "-byte prefix";
  }
}

TEST(ArtifactFileTest, RejectsEverySingleFlippedBit) {
  const std::vector<uint8_t> bytes = TwoSectionImage();
  // Every byte, one flipped bit each (rotating which bit).
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= static_cast<uint8_t>(1u << (i % 8));
    StatusOr<ArtifactFile> file =
        ArtifactFile::FromBytes(std::move(corrupt));
    EXPECT_FALSE(file.ok()) << "accepted a flipped bit in byte " << i;
  }
}

TEST(ArtifactFileTest, RejectsAppendedBytes) {
  std::vector<uint8_t> bytes = TwoSectionImage();
  bytes.push_back(0);
  const StatusOr<ArtifactFile> file =
      ArtifactFile::FromBytes(std::move(bytes));
  EXPECT_FALSE(file.ok());
}

// --- knowledge-base round trips ----------------------------------------

struct RoundTripCase {
  const char* name;
  OperatorId op;
  RevisionStrategy strategy;
};

// Saves kb, reloads it into `vocabulary`, and checks observable
// equivalence: models, alphabet, entailment answers, replayability.
void ExpectRoundTrips(const KnowledgeBase& kb, Vocabulary* vocabulary,
                      const std::vector<Formula>& queries,
                      const std::string& stem) {
  const std::filesystem::path path = TempPath(stem);
  ASSERT_TRUE(SaveKnowledgeBaseArtifact(kb, path.string()).ok());
  StatusOr<KnowledgeBase> loaded =
      LoadKnowledgeBaseArtifact(path.string(), vocabulary);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(&loaded->op(), &kb.op());
  EXPECT_EQ(loaded->strategy(), kb.strategy());
  EXPECT_EQ(loaded->num_revisions(), kb.num_revisions());
  EXPECT_TRUE(loaded->Models() == kb.Models());
  EXPECT_TRUE(loaded->CurrentAlphabet() == kb.CurrentAlphabet());
  EXPECT_TRUE(loaded->folded().StructurallyEqual(kb.folded()));
  for (const Formula& q : queries) {
    EXPECT_EQ(loaded->Ask(q), kb.Ask(q));
  }
}

TEST(KbArtifactTest, RoundTripsAcrossOperatorsAndStrategies) {
  const RoundTripCase cases[] = {
      {"dalal_delayed", OperatorId::kDalal, RevisionStrategy::kDelayed},
      {"weber_delayed", OperatorId::kWeber, RevisionStrategy::kDelayed},
      {"winslett_explicit", OperatorId::kWinslett,
       RevisionStrategy::kExplicit},
      {"borgida_explicit", OperatorId::kBorgida,
       RevisionStrategy::kExplicit},
      {"dalal_compact", OperatorId::kDalal, RevisionStrategy::kCompact},
      {"widtio_explicit", OperatorId::kWidtio,
       RevisionStrategy::kExplicit},
  };
  for (const RoundTripCase& c : cases) {
    SCOPED_TRACE(c.name);
    Vocabulary vocabulary;
    StatusOr<KnowledgeBase> kb = KnowledgeBase::Create(
        Theory::ParseOrDie("a -> b; b -> c; a", &vocabulary),
        OperatorById(c.op), c.strategy, &vocabulary);
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    kb->Revise(ParseOrDie("!c", &vocabulary));
    kb->Revise(ParseOrDie("a | c", &vocabulary));
    const std::vector<Formula> queries = {
        ParseOrDie("a", &vocabulary), ParseOrDie("b | !c", &vocabulary),
        ParseOrDie("a -> !c", &vocabulary)};
    ExpectRoundTrips(*kb, &vocabulary, queries,
                     std::string("kb_roundtrip_") + c.name);
  }
}

TEST(KbArtifactTest, RoundTripsDegenerateModelSets) {
  // An unsatisfiable revision leaves zero models; zero rows and an empty
  // BDD must survive the trip.
  Vocabulary vocabulary;
  StatusOr<KnowledgeBase> kb = KnowledgeBase::Create(
      Theory::ParseOrDie("p | q", &vocabulary),
      OperatorById(OperatorId::kDalal), RevisionStrategy::kDelayed,
      &vocabulary);
  ASSERT_TRUE(kb.ok());
  kb->Revise(ParseOrDie("p & !p", &vocabulary));
  EXPECT_EQ(kb->Models().size(), 0u);
  ExpectRoundTrips(*kb, &vocabulary, {ParseOrDie("p", &vocabulary)},
                   "kb_roundtrip_unsat");
}

TEST(KbArtifactTest, RoundTripsNoRevisions) {
  Vocabulary vocabulary;
  StatusOr<KnowledgeBase> kb = KnowledgeBase::Create(
      Theory::ParseOrDie("x0 & (x1 | x2)", &vocabulary),
      OperatorById(OperatorId::kSatoh), RevisionStrategy::kDelayed,
      &vocabulary);
  ASSERT_TRUE(kb.ok());
  ExpectRoundTrips(*kb, &vocabulary, {ParseOrDie("x0", &vocabulary)},
                   "kb_roundtrip_norevisions");
}

TEST(KbArtifactTest, LoadedModelsMemoSkipsRecomputation) {
  // A loaded artifact primes the Models() memo: Models() must answer
  // without touching the (cleared) global enumeration cache.
  Vocabulary vocabulary;
  StatusOr<KnowledgeBase> kb = KnowledgeBase::Create(
      Theory::ParseOrDie("a | b", &vocabulary),
      OperatorById(OperatorId::kDalal), RevisionStrategy::kDelayed,
      &vocabulary);
  ASSERT_TRUE(kb.ok());
  kb->Revise(ParseOrDie("!a", &vocabulary));
  const ModelSet direct = kb->Models();

  const std::filesystem::path path = TempPath("kb_memo");
  ASSERT_TRUE(SaveKnowledgeBaseArtifact(*kb, path.string()).ok());
  Vocabulary fresh;
  StatusOr<KnowledgeBase> loaded =
      LoadKnowledgeBaseArtifact(path.string(), &fresh);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ModelCache::Global().Clear();
  EXPECT_TRUE(loaded->Models() == direct);
  // A further revision invalidates the memo and recomputes.
  loaded->Revise(ParseOrDie("a | b", &fresh));
  EXPECT_EQ(loaded->Models().size(), 1u);
}

TEST(KbArtifactTest, StructuralDedupSharesRepeatedSubtrees) {
  Vocabulary vocabulary;
  // The same (a & b) subtree five times, built through separate parses so
  // node identity differs but structure matches.
  StatusOr<KnowledgeBase> kb = KnowledgeBase::Create(
      Theory::ParseOrDie("(a & b) | c; (a & b) | d; (a & b)", &vocabulary),
      OperatorById(OperatorId::kDalal), RevisionStrategy::kDelayed,
      &vocabulary);
  ASSERT_TRUE(kb.ok());
  kb->Revise(ParseOrDie("(a & b) -> !d", &vocabulary));

  const std::filesystem::path path = TempPath("kb_dedup");
  ASSERT_TRUE(SaveKnowledgeBaseArtifact(*kb, path.string()).ok());
  StatusOr<KbArtifact> artifact = KbArtifact::Open(path.string());
  std::filesystem::remove(path);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  // Shared: a, b, c, d, (a&b), !d, plus the four roots' distinct upper
  // nodes — far fewer than the sum of the tree sizes.
  EXPECT_LE(artifact->info().formula_nodes, 10u);
  EXPECT_TRUE(artifact->VerifyPackedSections().ok());
}

TEST(KbArtifactTest, RoundTripsEveryFuzzShapeAtOneAndEightThreads) {
  // Sweep generated scenarios until every generator shape has round
  // tripped, at 1 and at 8 worker threads (the packed row layout must
  // not depend on enumeration parallelism).
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE(threads);
    SetParallelThreadsOverride(threads);
    std::set<fuzz::Shape> seen;
    for (uint64_t seed = 1; seed <= 200 && seen.size() < 6; ++seed) {
      const fuzz::Scenario s = fuzz::GenerateScenario(seed);
      if (!seen.insert(s.shape).second) continue;
      SCOPED_TRACE(fuzz::ShapeName(s.shape));
      StatusOr<KnowledgeBase> kb = KnowledgeBase::Create(
          s.t, OperatorById(OperatorId::kDalal),
          RevisionStrategy::kDelayed, s.vocabulary.get());
      ASSERT_TRUE(kb.ok()) << kb.status().ToString();
      kb->Revise(s.p);
      ExpectRoundTrips(*kb, s.vocabulary.get(), {s.q},
                       "kb_shape_" + std::to_string(seed));
    }
    EXPECT_EQ(seen.size(), 6u) << "generator no longer covers all shapes";
  }
  SetParallelThreadsOverride(0);
}

TEST(KbArtifactTest, SavedFileSurvivesByteLevelScrutiny) {
  // End-to-end: a saved KB artifact rejects every single flipped bit
  // (sampled) — the oracle property, straight from the public API.
  Vocabulary vocabulary;
  StatusOr<KnowledgeBase> kb = KnowledgeBase::Create(
      Theory::ParseOrDie("a | b; b -> c", &vocabulary),
      OperatorById(OperatorId::kDalal), RevisionStrategy::kDelayed,
      &vocabulary);
  ASSERT_TRUE(kb.ok());
  kb->Revise(ParseOrDie("!b", &vocabulary));
  const std::filesystem::path path = TempPath("kb_scrutiny");
  ASSERT_TRUE(SaveKnowledgeBaseArtifact(*kb, path.string()).ok());
  const std::vector<uint8_t> bytes = ReadAll(path);
  std::filesystem::remove(path);
  ASSERT_FALSE(bytes.empty());
  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= static_cast<uint8_t>(1u << (i % 8));
    EXPECT_FALSE(ArtifactFile::FromBytes(std::move(corrupt)).ok())
        << "byte " << i;
  }
}

// --- golden canary -----------------------------------------------------

#ifdef REVISE_ARTIFACT_GOLDEN_DIR

std::string GoldenPath() {
  return std::string(REVISE_ARTIFACT_GOLDEN_DIR) + "/canary.rkb";
}

TEST(GoldenCanaryTest, CommittedArtifactStillLoads) {
  // The committed canary pins the on-disk format: if an encoder change
  // breaks compatibility, this fails before any user's artifact does.
  StatusOr<KbArtifact> artifact = KbArtifact::Open(GoldenPath());
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_EQ(artifact->info().format_version, kFormatVersion);
  EXPECT_EQ(artifact->info().operator_name, "Dalal");
  EXPECT_EQ(artifact->info().strategy_name, "delayed");
  EXPECT_EQ(artifact->info().update_count, 1u);
  EXPECT_TRUE(artifact->VerifyPackedSections().ok());

  Vocabulary vocabulary;
  StatusOr<KbImage> image = artifact->Materialize(&vocabulary);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  // canary.rkb compiles examples/kb/circuit.theory revised by !l: the
  // lamp is dark, the Dalal-closest explanation keeps s and p.
  Vocabulary loaded;
  StatusOr<KnowledgeBase> kb =
      LoadKnowledgeBaseArtifact(GoldenPath(), &loaded);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_EQ(kb->Models().size(), 1u);
  EXPECT_TRUE(kb->Ask(ParseOrDie("!l", &loaded)));
  EXPECT_TRUE(kb->Ask(ParseOrDie("s & p", &loaded)));
}

TEST(GoldenCanaryTest, CorruptedCanaryIsRejected) {
  const std::vector<uint8_t> bytes = ReadAll(GoldenPath());
  ASSERT_FALSE(bytes.empty());
  for (size_t i = 0; i < bytes.size(); i += 11) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= static_cast<uint8_t>(1u << (i % 8));
    EXPECT_FALSE(ArtifactFile::FromBytes(std::move(corrupt)).ok())
        << "byte " << i;
  }
}

#endif  // REVISE_ARTIFACT_GOLDEN_DIR

}  // namespace
}  // namespace revise::artifact
