// Tests for the Status / StatusOr primitives (util/status.h), focused on
// the value-category paths the rest of the suite only exercises
// incidentally: copies, moves, self-assignment, move-out of the held
// value, and the ASSIGN/RETURN macros' interaction with move-only types.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

// GCC 12 issues spurious maybe-uninitialized warnings for the inactive
// std::string member of the variant when a StatusOr<Trivial> holds the
// value alternative (PR105562 family); the accesses below are all guarded
// by ok() checks, so silence the false positive for this file only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace revise {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = ResourceExhaustedError("too deep");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "too deep");
  EXPECT_EQ(s.ToString(), "RESOURCE_EXHAUSTED: too deep");
}

TEST(StatusTest, CopyMoveAndSelfAssignment) {
  Status s = InvalidArgumentError("original");
  Status copy = s;
  EXPECT_EQ(copy, s);

  Status moved = std::move(s);
  EXPECT_EQ(moved.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(moved.message(), "original");

  Status& alias = moved;  // self-assignment through an alias
  moved = alias;
  EXPECT_EQ(moved.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(moved.message(), "original");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  const StatusOr<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  const StatusOr<int> bad = NotFoundError("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, CopyAndMovePreserveTheAlternative) {
  StatusOr<std::string> ok = std::string("payload");
  StatusOr<std::string> copy = ok;
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy.value(), "payload");
  EXPECT_EQ(ok.value(), "payload");  // copy left the source intact

  StatusOr<std::string> moved = std::move(ok);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), "payload");

  StatusOr<std::string> bad = InternalError("boom");
  StatusOr<std::string> bad_moved = std::move(bad);
  ASSERT_FALSE(bad_moved.ok());
  EXPECT_EQ(bad_moved.status().message(), "boom");
}

TEST(StatusOrTest, SelfAssignmentIsANoOp) {
  StatusOr<std::vector<int>> ok = std::vector<int>{1, 2, 3};
  StatusOr<std::vector<int>>& alias = ok;
  ok = alias;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), (std::vector<int>{1, 2, 3}));

  StatusOr<std::vector<int>> bad = OutOfRangeError("oob");
  StatusOr<std::vector<int>>& bad_alias = bad;
  bad = bad_alias;
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, RvalueValueMovesTheHeldObject) {
  StatusOr<std::unique_ptr<int>> holder = std::make_unique<int>(7);
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> out = std::move(holder).value();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, WorksWithMoveOnlyTypesThroughTheMacros) {
  const auto make = [](bool succeed) -> StatusOr<std::unique_ptr<int>> {
    if (!succeed) return FailedPreconditionError("no");
    return std::make_unique<int>(5);
  };
  const auto consume = [&](bool succeed) -> StatusOr<int> {
    std::unique_ptr<int> p;
    REVISE_ASSIGN_OR_RETURN(p, make(succeed));
    return *p;
  };
  const StatusOr<int> five = consume(true);
  ASSERT_TRUE(five.ok());
  EXPECT_EQ(five.value(), 5);
  const StatusOr<int> err = consume(false);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StatusOrTest, ArrowOperatorReachesMembers) {
  StatusOr<std::string> s = std::string("abc");
  EXPECT_EQ(s->size(), 3u);
  s->push_back('d');
  EXPECT_EQ(s.value(), "abcd");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kDeadlineExceeded}) {
    EXPECT_STRNE(StatusCodeName(code), "");
  }
}

}  // namespace
}  // namespace revise
