#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.h"
#include "sat/cardinality.h"
#include "sat/cnf.h"
#include "sat/literal.h"
#include "sat/solver.h"
#include "util/random.h"

namespace revise::sat {
namespace {

TEST(LiteralTest, Encoding) {
  EXPECT_EQ(0, PosLit(0));
  EXPECT_EQ(1, NegLit(0));
  EXPECT_EQ(6, PosLit(3));
  EXPECT_EQ(7, NegLit(3));
  EXPECT_EQ(3, LitVar(PosLit(3)));
  EXPECT_FALSE(LitSign(PosLit(3)));
  EXPECT_TRUE(LitSign(NegLit(3)));
  EXPECT_EQ(PosLit(3), Negate(NegLit(3)));
}

TEST(SolverTest, EmptyProblemIsSat) {
  Solver solver;
  EXPECT_EQ(Solver::Result::kSat, solver.Solve());
}

TEST(SolverTest, SingleUnit) {
  Solver solver;
  const int v = solver.NewVar();
  ASSERT_TRUE(solver.AddUnit(PosLit(v)));
  EXPECT_EQ(Solver::Result::kSat, solver.Solve());
  EXPECT_TRUE(solver.ModelValue(v));
}

TEST(SolverTest, ContradictoryUnitsAreUnsat) {
  Solver solver;
  const int v = solver.NewVar();
  ASSERT_TRUE(solver.AddUnit(PosLit(v)));
  EXPECT_FALSE(solver.AddUnit(NegLit(v)));
  EXPECT_FALSE(solver.Okay());
  EXPECT_EQ(Solver::Result::kUnsat, solver.Solve());
}

TEST(SolverTest, SimplePropagationChain) {
  Solver solver;
  solver.EnsureVarCount(4);
  // 0 -> 1 -> 2 -> 3, assert 0.
  ASSERT_TRUE(solver.AddClause({NegLit(0), PosLit(1)}));
  ASSERT_TRUE(solver.AddClause({NegLit(1), PosLit(2)}));
  ASSERT_TRUE(solver.AddClause({NegLit(2), PosLit(3)}));
  ASSERT_TRUE(solver.AddUnit(PosLit(0)));
  EXPECT_EQ(Solver::Result::kSat, solver.Solve());
  EXPECT_TRUE(solver.ModelValue(0));
  EXPECT_TRUE(solver.ModelValue(1));
  EXPECT_TRUE(solver.ModelValue(2));
  EXPECT_TRUE(solver.ModelValue(3));
}

TEST(SolverTest, TautologicalClauseIsIgnored) {
  Solver solver;
  solver.EnsureVarCount(1);
  ASSERT_TRUE(solver.AddClause({PosLit(0), NegLit(0)}));
  EXPECT_EQ(Solver::Result::kSat, solver.Solve());
}

TEST(SolverTest, PigeonHole3Into2IsUnsat) {
  // p_{ij}: pigeon i in hole j; 3 pigeons, 2 holes.
  Solver solver;
  auto var = [](int pigeon, int hole) { return pigeon * 2 + hole; };
  solver.EnsureVarCount(6);
  for (int p = 0; p < 3; ++p) {
    ASSERT_TRUE(
        solver.AddClause({PosLit(var(p, 0)), PosLit(var(p, 1))}));
  }
  for (int h = 0; h < 2; ++h) {
    for (int p1 = 0; p1 < 3; ++p1) {
      for (int p2 = p1 + 1; p2 < 3; ++p2) {
        ASSERT_TRUE(solver.AddClause(
            {NegLit(var(p1, h)), NegLit(var(p2, h))}));
      }
    }
  }
  EXPECT_EQ(Solver::Result::kUnsat, solver.Solve());
}

TEST(SolverTest, AssumptionsDoNotPersist) {
  Solver solver;
  const int v = solver.NewVar();
  const int w = solver.NewVar();
  ASSERT_TRUE(solver.AddClause({PosLit(v), PosLit(w)}));
  EXPECT_EQ(Solver::Result::kSat, solver.SolveAssuming({NegLit(v)}));
  EXPECT_TRUE(solver.ModelValue(w));
  EXPECT_EQ(Solver::Result::kSat, solver.SolveAssuming({NegLit(w)}));
  EXPECT_TRUE(solver.ModelValue(v));
  EXPECT_EQ(Solver::Result::kUnsat,
            solver.SolveAssuming({NegLit(v), NegLit(w)}));
  // The solver is still usable and satisfiable.
  EXPECT_EQ(Solver::Result::kSat, solver.Solve());
}

TEST(SolverTest, IncrementalClauseAddition) {
  Solver solver;
  solver.EnsureVarCount(3);
  ASSERT_TRUE(solver.AddClause({PosLit(0), PosLit(1), PosLit(2)}));
  EXPECT_EQ(Solver::Result::kSat, solver.Solve());
  ASSERT_TRUE(solver.AddUnit(NegLit(0)));
  EXPECT_EQ(Solver::Result::kSat, solver.Solve());
  ASSERT_TRUE(solver.AddUnit(NegLit(1)));
  EXPECT_EQ(Solver::Result::kSat, solver.Solve());
  EXPECT_TRUE(solver.ModelValue(2));
  EXPECT_FALSE(solver.ModelValue(0));
  EXPECT_FALSE(solver.ModelValue(1));
}

// Brute-force evaluation of a clause set.
bool BruteForceSatisfiable(int num_vars,
                           const std::vector<std::vector<Lit>>& clauses) {
  for (uint64_t assignment = 0; assignment < (uint64_t{1} << num_vars);
       ++assignment) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (const Lit lit : clause) {
        const bool value = (assignment >> LitVar(lit)) & 1;
        if (value != LitSign(lit)) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class RandomCnfTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfTest, AgreesWithBruteForceNearPhaseTransition) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    const int num_vars = 4 + static_cast<int>(rng.Below(9));  // 4..12
    // Clause counts around the 3-SAT phase transition ratio ~4.27.
    const int num_clauses =
        static_cast<int>(num_vars * (3.0 + rng.Below(30) / 10.0));
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<Lit> clause;
      // Three distinct variables.
      int a = static_cast<int>(rng.Below(num_vars));
      int b = static_cast<int>(rng.Below(num_vars));
      int d = static_cast<int>(rng.Below(num_vars));
      while (b == a) b = static_cast<int>(rng.Below(num_vars));
      while (d == a || d == b) d = static_cast<int>(rng.Below(num_vars));
      clause.push_back(MakeLit(a, rng.Chance(0.5)));
      clause.push_back(MakeLit(b, rng.Chance(0.5)));
      clause.push_back(MakeLit(d, rng.Chance(0.5)));
      clauses.push_back(clause);
    }
    Solver solver;
    solver.EnsureVarCount(num_vars);
    bool trivially_unsat = false;
    for (const auto& clause : clauses) {
      if (!solver.AddClause(clause)) trivially_unsat = true;
    }
    const bool expected = BruteForceSatisfiable(num_vars, clauses);
    const bool actual =
        !trivially_unsat && solver.Solve() == Solver::Result::kSat;
    ASSERT_EQ(expected, actual)
        << "seed=" << GetParam() << " round=" << round;
    if (actual) {
      // Verify the model actually satisfies every clause.
      for (const auto& clause : clauses) {
        bool any = false;
        for (const Lit lit : clause) {
          if (solver.ModelValue(LitVar(lit)) != LitSign(lit)) {
            any = true;
            break;
          }
        }
        ASSERT_TRUE(any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfTest,
                         ::testing::Range(1, 11));

// Counts models of a CNF restricted to the first `num_inputs` variables
// using the solver with blocking clauses.
size_t CountProjectedModels(const Cnf& cnf, int num_inputs) {
  Solver solver;
  solver.EnsureVarCount(cnf.num_vars());
  for (const auto& clause : cnf.clauses()) {
    if (!solver.AddClause(clause)) return 0;
  }
  size_t count = 0;
  while (solver.Solve() == Solver::Result::kSat) {
    ++count;
    std::vector<Lit> blocking;
    for (int v = 0; v < num_inputs; ++v) {
      blocking.push_back(MakeLit(v, solver.ModelValue(v)));
    }
    if (!solver.AddClause(blocking)) break;
  }
  return count;
}

uint64_t Binomial(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  uint64_t result = 1;
  for (uint64_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

class CardinalityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CardinalityTest, AtMostCountsMatchBinomialSums) {
  const int n = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  Cnf cnf;
  std::vector<Lit> lits;
  for (int i = 0; i < n; ++i) lits.push_back(PosLit(cnf.NewVar()));
  EncodeAtMost(lits, k, &cnf);
  uint64_t expected = 0;
  for (int j = 0; j <= k && j <= n; ++j) expected += Binomial(n, j);
  EXPECT_EQ(expected, CountProjectedModels(cnf, n));
}

TEST_P(CardinalityTest, ExactlyCountsMatchBinomial) {
  const int n = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  Cnf cnf;
  std::vector<Lit> lits;
  for (int i = 0; i < n; ++i) lits.push_back(PosLit(cnf.NewVar()));
  EncodeExactly(lits, k, &cnf);
  EXPECT_EQ(Binomial(n, k), CountProjectedModels(cnf, n));
}

TEST_P(CardinalityTest, AtLeastCountsMatchBinomialSums) {
  const int n = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  Cnf cnf;
  std::vector<Lit> lits;
  for (int i = 0; i < n; ++i) lits.push_back(PosLit(cnf.NewVar()));
  EncodeAtLeast(lits, k, &cnf);
  uint64_t expected = 0;
  for (int j = k; j <= n; ++j) expected += Binomial(n, j);
  EXPECT_EQ(expected, CountProjectedModels(cnf, n));
}

INSTANTIATE_TEST_SUITE_P(
    SmallSweep, CardinalityTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(0, 1, 2, 3, 5, 8)));

TEST(TotalizerTest, OutputsReflectTrueCount) {
  // Fix an assignment of the inputs and check each output literal.
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.Below(8));
    Cnf cnf;
    std::vector<Lit> lits;
    for (int i = 0; i < n; ++i) lits.push_back(PosLit(cnf.NewVar()));
    std::vector<Lit> counts = EncodeTotalizer(lits, &cnf);
    ASSERT_EQ(static_cast<size_t>(n), counts.size());
    Solver solver;
    solver.EnsureVarCount(cnf.num_vars());
    for (const auto& clause : cnf.clauses()) {
      ASSERT_TRUE(solver.AddClause(clause));
    }
    const uint64_t assignment = rng.Below(uint64_t{1} << n);
    std::vector<Lit> assumptions;
    int true_count = 0;
    for (int i = 0; i < n; ++i) {
      const bool value = (assignment >> i) & 1;
      true_count += value ? 1 : 0;
      assumptions.push_back(MakeLit(LitVar(lits[i]), !value));
    }
    ASSERT_EQ(Solver::Result::kSat, solver.SolveAssuming(assumptions));
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(true_count >= j + 1,
                solver.ModelValue(LitVar(counts[j])) != LitSign(counts[j]));
    }
  }
}

TEST(CnfTest, DimacsRoundTrip) {
  Cnf cnf;
  cnf.EnsureVarCount(3);
  cnf.AddClause({PosLit(0), NegLit(2)});
  cnf.AddUnit(PosLit(1));
  const std::string text = cnf.ToDimacs();
  StatusOr<Cnf> parsed = Cnf::FromDimacs(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(3, parsed->num_vars());
  ASSERT_EQ(2u, parsed->num_clauses());
  EXPECT_EQ(cnf.clauses()[0], parsed->clauses()[0]);
  EXPECT_EQ(cnf.clauses()[1], parsed->clauses()[1]);
}

TEST(CnfTest, DimacsRejectsGarbage) {
  EXPECT_FALSE(Cnf::FromDimacs("p cnf x y").ok());
  EXPECT_FALSE(Cnf::FromDimacs("1 2 0").ok());
  EXPECT_FALSE(Cnf::FromDimacs("p cnf 2 1\n1 2").ok());
}

// Incremental stress: interleave clause additions with solves under
// random assumptions, cross-checking every answer against a fresh
// brute-force evaluation of the accumulated clause set.
class IncrementalStressTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalStressTest, InterleavedAddAndSolveMatchesBruteForce) {
  Rng rng(GetParam());
  const int num_vars = 8;
  Solver solver;
  solver.EnsureVarCount(num_vars);
  std::vector<std::vector<Lit>> clauses;
  bool trivially_unsat = false;
  for (int round = 0; round < 60; ++round) {
    // Add 1-3 random clauses of random width 1-3.
    const int batch = 1 + static_cast<int>(rng.Below(3));
    for (int c = 0; c < batch; ++c) {
      std::vector<Lit> clause;
      const int width = 1 + static_cast<int>(rng.Below(3));
      for (int k = 0; k < width; ++k) {
        clause.push_back(MakeLit(static_cast<int>(rng.Below(num_vars)),
                                 rng.Chance(0.5)));
      }
      clauses.push_back(clause);
      if (!solver.AddClause(clause)) trivially_unsat = true;
    }
    // Solve under 0-2 random assumptions.
    std::vector<Lit> assumptions;
    const int num_assumptions = static_cast<int>(rng.Below(3));
    for (int a = 0; a < num_assumptions; ++a) {
      assumptions.push_back(MakeLit(static_cast<int>(rng.Below(num_vars)),
                                    rng.Chance(0.5)));
    }
    // Brute-force ground truth: clauses plus unit assumptions.
    std::vector<std::vector<Lit>> augmented = clauses;
    for (const Lit a : assumptions) augmented.push_back({a});
    const bool expected = BruteForceSatisfiable(num_vars, augmented);
    const bool actual = !trivially_unsat &&
                        solver.SolveAssuming(assumptions) ==
                            Solver::Result::kSat;
    ASSERT_EQ(expected, actual)
        << "round " << round << " seed " << GetParam();
    if (!expected && assumptions.empty()) break;  // permanently UNSAT
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalStressTest,
                         ::testing::Range(20, 28));

TEST(SolverTest, StatsAccumulate) {
  Solver solver;
  solver.EnsureVarCount(10);
  Rng rng(3);
  for (int c = 0; c < 42; ++c) {
    std::vector<Lit> clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(
          MakeLit(static_cast<int>(rng.Below(10)), rng.Chance(0.5)));
    }
    Solver::LatchConflict(solver.AddClause(clause));
  }
  EXPECT_NE(solver.Solve(), Solver::Result::kUnknown);
  EXPECT_GT(solver.stats().propagations, 0u);
}

TEST(SolverTest, CountersConsistentAfterUnsatSolve) {
  // Pigeonhole 5→4 forces real search: conflicts, decisions, learning.
  // The per-solver stats must be internally consistent, and solving must
  // publish matching deltas to the global counter registry.
  obs::Counter* global_conflicts =
      obs::Registry::Global().GetCounter("sat.conflicts");
  obs::Counter* global_decisions =
      obs::Registry::Global().GetCounter("sat.decisions");
  obs::Counter* global_solves =
      obs::Registry::Global().GetCounter("sat.solves");
  const uint64_t conflicts_before = global_conflicts->Value();
  const uint64_t decisions_before = global_decisions->Value();
  const uint64_t solves_before = global_solves->Value();

  const int holes = 4;
  const int pigeons = 5;
  Solver solver;
  solver.EnsureVarCount(pigeons * holes);
  auto var = [&](int p, int h) { return p * holes + h; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(PosLit(var(p, h)));
    ASSERT_TRUE(solver.AddClause(std::move(clause)));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(
            solver.AddClause({NegLit(var(p1, h)), NegLit(var(p2, h))}));
      }
    }
  }
  EXPECT_EQ(solver.Solve(), Solver::Result::kUnsat);

  const SolverStats& stats = solver.stats();
  EXPECT_GE(stats.conflicts, 1u);
  EXPECT_GE(stats.decisions, 1u);
  // Every decision is followed by at least one propagation (its own
  // enqueue), so propagations dominate decisions.
  EXPECT_GE(stats.propagations, stats.decisions);
  // Each learned clause comes from a conflict.
  EXPECT_LE(stats.learned_clauses, stats.conflicts);
  EXPECT_LE(stats.deleted_clauses, stats.learned_clauses);

  // The solve published its deltas to the global registry.
  EXPECT_EQ(global_conflicts->Value() - conflicts_before, stats.conflicts);
  EXPECT_EQ(global_decisions->Value() - decisions_before, stats.decisions);
  EXPECT_EQ(global_solves->Value() - solves_before, 1u);
}

}  // namespace
}  // namespace revise::sat
