#include <gtest/gtest.h>

#include <algorithm>

#include "hardness/random_instances.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "model/model_set.h"
#include "obs/metrics.h"
#include "solve/distance.h"
#include "solve/model_cache.h"
#include "solve/sat_context.h"
#include "solve/services.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace revise {
namespace {

using ::revise::testing::BruteForceModels;
using ::revise::testing::BruteForceSat;

TEST(ServicesTest, BasicSatisfiability) {
  Vocabulary vocabulary;
  EXPECT_TRUE(IsSatisfiable(ParseOrDie("a & !b", &vocabulary)));
  EXPECT_FALSE(IsSatisfiable(ParseOrDie("a & !a", &vocabulary)));
  EXPECT_TRUE(IsSatisfiable(Formula::True()));
  EXPECT_FALSE(IsSatisfiable(Formula::False()));
}

TEST(ServicesTest, BasicEntailment) {
  Vocabulary vocabulary;
  const Formula a_and_b = ParseOrDie("a & b", &vocabulary);
  const Formula a = ParseOrDie("a", &vocabulary);
  const Formula a_or_b = ParseOrDie("a | b", &vocabulary);
  EXPECT_TRUE(Entails(a_and_b, a));
  EXPECT_TRUE(Entails(a_and_b, a_or_b));
  EXPECT_FALSE(Entails(a_or_b, a));
  EXPECT_TRUE(Entails(Formula::False(), a));
}

TEST(ServicesTest, IntroExampleRevisionConclusion) {
  // Paper Section 1: T = g | b, P = !g; T & P |= !g & b.
  Vocabulary vocabulary;
  const Formula t = ParseOrDie("g | b", &vocabulary);
  const Formula p = ParseOrDie("!g", &vocabulary);
  EXPECT_TRUE(Entails(Formula::And(t, p), ParseOrDie("!g & b", &vocabulary)));
}

TEST(ServicesTest, EquivalenceChecks) {
  Vocabulary vocabulary;
  EXPECT_TRUE(AreEquivalent(ParseOrDie("a -> b", &vocabulary),
                            ParseOrDie("!a | b", &vocabulary)));
  EXPECT_TRUE(AreEquivalent(ParseOrDie("a ^ b", &vocabulary),
                            ParseOrDie("(a | b) & !(a & b)", &vocabulary)));
  EXPECT_FALSE(AreEquivalent(ParseOrDie("a", &vocabulary),
                             ParseOrDie("b", &vocabulary)));
}

class RandomFormulaSolveTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomFormulaSolveTest, EnumerationAgreesWithTruthTable) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    vars.push_back(vocabulary.Intern(name));
  }
  const Alphabet alphabet(vars);
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const Formula f = RandomFormula(vars, 5, &rng);
    const ModelSet expected = BruteForceModels(f, alphabet);
    const ModelSet actual = EnumerateModels(f, alphabet);
    ASSERT_EQ(expected, actual) << ToString(f, vocabulary);
    ASSERT_EQ(BruteForceSat(f, alphabet), IsSatisfiable(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFormulaSolveTest,
                         ::testing::Range(100, 108));

TEST(ServicesTest, EnumerationProjectsAuxiliaryVariables) {
  // f = (a | x) & (!x | b): models over {a, b} are the projections.
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("(a | x) & (!x | b)", &vocabulary);
  const Alphabet ab({vocabulary.Find("a"), vocabulary.Find("b")});
  const ModelSet models = EnumerateModels(f, ab);
  // Projections: a=1,b=0 (x=0); a=1,b=1; a=0,b=1 (x=1); not a=0,b=0.
  EXPECT_EQ(3u, models.size());
}

TEST(ServicesTest, EnumerationOverSupersetAlphabet) {
  // Letters not occurring in f take both values.
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("a", &vocabulary);
  const Alphabet abc({vocabulary.Find("a"), vocabulary.Intern("b2"),
                      vocabulary.Intern("c2")});
  EXPECT_EQ(4u, CountModels(f, abc));
}

TEST(ServicesTest, EnumerationLimit) {
  Vocabulary vocabulary;
  const Formula f = Formula::True();
  const Alphabet abc({vocabulary.Intern("a"), vocabulary.Intern("b"),
                      vocabulary.Intern("c")});
  EXPECT_EQ(3u, EnumerateModels(f, abc, 3).size());
  EXPECT_EQ(8u, EnumerateModels(f, abc).size());
}

TEST(ServicesTest, QueryEquivalenceWithAuxiliaryLetters) {
  // T' = (y <-> a) & y is query equivalent to a over {a}.
  Vocabulary vocabulary;
  const Formula t_prime = ParseOrDie("(y <-> a) & y", &vocabulary);
  const Formula t = ParseOrDie("a", &vocabulary);
  const Alphabet a({vocabulary.Find("a")});
  EXPECT_TRUE(QueryEquivalent(t_prime, t, a));
  EXPECT_FALSE(AreEquivalent(t_prime, t));
}

TEST(ServicesTest, RepeatedEnumerationIsCachedAndIdentical) {
  // Force the cache on even under REVISE_MODEL_CACHE=0; restored below.
  const size_t env_capacity = ModelCache::Global().capacity();
  ModelCache::Global().set_capacity(ModelCache::kDefaultCapacity);
  ModelCache::Global().Clear();
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("(p | q) & (q | r) & !(p & r)", &vocabulary);
  const Alphabet alphabet(f.Vars());
  const uint64_t hits_before =
      obs::Registry::Global().GetCounter("solve.model_cache.hits")->Value();
  const ModelSet cold = EnumerateModels(f, alphabet);
  const ModelSet warm = EnumerateModels(f, alphabet);
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(BruteForceModels(f, alphabet), warm);
  EXPECT_EQ(
      hits_before + 1,
      obs::Registry::Global().GetCounter("solve.model_cache.hits")->Value());
  ModelCache::Global().Clear();
  ModelCache::Global().set_capacity(env_capacity);
}

TEST(SatContextTest, FramesAreIndependent) {
  Vocabulary vocabulary;
  const Formula a = ParseOrDie("a", &vocabulary);
  SatContext context;
  context.Assert(a, 0);
  context.Assert(Formula::Not(a), 1);
  ASSERT_TRUE(context.Solve());
  EXPECT_TRUE(context.ModelValue(vocabulary.Find("a"), 0));
  EXPECT_FALSE(context.ModelValue(vocabulary.Find("a"), 1));
}

TEST(SatContextTest, EncodeIsMemoized) {
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("a & b", &vocabulary);
  SatContext context;
  const sat::Lit l1 = context.Encode(f);
  const sat::Lit l2 = context.Encode(f);
  EXPECT_EQ(l1, l2);
}

// --- distance machinery ---

struct DistanceCase {
  const char* t;
  const char* p;
  size_t expected;
};

class MinDistanceTest : public ::testing::TestWithParam<DistanceCase> {};

TEST_P(MinDistanceTest, MatchesHandComputedValue) {
  Vocabulary vocabulary;
  const Formula t = ParseOrDie(GetParam().t, &vocabulary);
  const Formula p = ParseOrDie(GetParam().p, &vocabulary);
  const Alphabet alphabet(UnionOfVars(std::vector<Formula>{t, p}));
  const auto distance = MinHammingDistance(t, p, alphabet);
  ASSERT_TRUE(distance.has_value());
  EXPECT_EQ(GetParam().expected, *distance);
}

INSTANTIATE_TEST_SUITE_P(
    HandCases, MinDistanceTest,
    ::testing::Values(
        DistanceCase{"a & b", "a & b", 0},
        DistanceCase{"a & b", "!a & b", 1},
        DistanceCase{"a & b & c", "!a & !b & !c", 3},
        // Paper Section 2.2.2 example: k_{T,P} = 1.
        DistanceCase{"a & b & c",
                     "(!a & !b & !d) | (!c & b & (a ^ d))", 1},
        // Section 4 example: T = a&b&c&d&e, P = !a | !b, k = 1.
        DistanceCase{"a & b & c & d & e", "!a | !b", 1}));

TEST(MinDistanceTest, UnsatisfiableOperandGivesNullopt) {
  Vocabulary vocabulary;
  const Formula t = ParseOrDie("a & !a", &vocabulary);
  const Formula p = ParseOrDie("b", &vocabulary);
  const Alphabet alphabet(UnionOfVars(std::vector<Formula>{t, p}));
  EXPECT_FALSE(MinHammingDistance(t, p, alphabet).has_value());
  EXPECT_FALSE(MinHammingDistance(p, t, alphabet).has_value());
}

// Brute-force delta(T,P): minimal symmetric differences between models.
std::vector<Interpretation> BruteForceDelta(const Formula& t,
                                            const Formula& p,
                                            const Alphabet& alphabet) {
  const ModelSet mt = BruteForceModels(t, alphabet);
  const ModelSet mp = BruteForceModels(p, alphabet);
  std::vector<Interpretation> diffs;
  for (const Interpretation& m : mt) {
    for (const Interpretation& n : mp) {
      diffs.push_back(m.SymmetricDifference(n));
    }
  }
  return MinimalUnderInclusion(std::move(diffs));
}

class RandomDistanceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDistanceTest, MinimalDiffsMatchBruteForce) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    vars.push_back(vocabulary.Intern(name));
  }
  const Alphabet alphabet(vars);
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const Formula t = RandomFormula(vars, 4, &rng);
    const Formula p = RandomFormula(vars, 4, &rng);
    if (!BruteForceSat(t, alphabet) || !BruteForceSat(p, alphabet)) {
      continue;
    }
    std::vector<Interpretation> expected =
        BruteForceDelta(t, p, alphabet);
    std::vector<Interpretation> actual =
        GlobalMinimalDiffs(t, p, alphabet);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    ASSERT_EQ(expected, actual)
        << "T=" << ToString(t, vocabulary) << " P=" << ToString(p, vocabulary);

    // Min distance must equal the smallest minimal-diff cardinality.
    size_t min_card = alphabet.size() + 1;
    for (const Interpretation& d : expected) {
      min_card = std::min(min_card, d.Cardinality());
    }
    const auto distance = MinHammingDistance(t, p, alphabet);
    ASSERT_TRUE(distance.has_value());
    ASSERT_EQ(min_card, *distance);

    // Weber's Omega is the union of the minimal diffs.
    Interpretation omega(alphabet.size());
    for (const Interpretation& d : expected) omega = omega.Union(d);
    ASSERT_EQ(omega, WeberOmega(t, p, alphabet));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDistanceTest,
                         ::testing::Range(200, 206));

TEST(WeberOmegaTest, PaperExampleOmega) {
  // Section 2.2.2: delta(T,P) = {{c},{a,b}}, Omega = {a,b,c}.
  Vocabulary vocabulary;
  const Formula t = ParseOrDie("a & b & c", &vocabulary);
  const Formula p =
      ParseOrDie("(!a & !b & !d) | (!c & b & (a ^ d))", &vocabulary);
  const Alphabet alphabet(UnionOfVars(std::vector<Formula>{t, p}));
  const Interpretation omega = WeberOmega(t, p, alphabet);
  EXPECT_TRUE(omega.Get(*alphabet.IndexOf(vocabulary.Find("a"))));
  EXPECT_TRUE(omega.Get(*alphabet.IndexOf(vocabulary.Find("b"))));
  EXPECT_TRUE(omega.Get(*alphabet.IndexOf(vocabulary.Find("c"))));
  EXPECT_FALSE(omega.Get(*alphabet.IndexOf(vocabulary.Find("d"))));
}

TEST(ModelSetTest, SetAlgebra) {
  const Alphabet alphabet({0, 1});
  const ModelSet a(alphabet, {Interpretation::FromIndex(2, 0),
                              Interpretation::FromIndex(2, 1)});
  const ModelSet b(alphabet, {Interpretation::FromIndex(2, 1),
                              Interpretation::FromIndex(2, 2)});
  EXPECT_EQ(3u, ModelSet::Union(a, b).size());
  EXPECT_EQ(1u, ModelSet::Intersection(a, b).size());
  EXPECT_TRUE(ModelSet::Intersection(a, b).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.Contains(Interpretation::FromIndex(2, 1)));
  EXPECT_FALSE(a.Contains(Interpretation::FromIndex(2, 3)));
}

TEST(ModelSetTest, MincMaxc) {
  // Sets {a}, {a,b}, {c} -> minc {{a},{c}}, maxc {{a,b},{c}}.
  const Interpretation sa = Interpretation::FromIndex(3, 0b001);
  const Interpretation sab = Interpretation::FromIndex(3, 0b011);
  const Interpretation sc = Interpretation::FromIndex(3, 0b100);
  std::vector<Interpretation> family = {sa, sab, sc};
  auto minimal = MinimalUnderInclusion(family);
  auto maximal = MaximalUnderInclusion(family);
  EXPECT_EQ(2u, minimal.size());
  EXPECT_EQ(2u, maximal.size());
  EXPECT_TRUE(std::find(minimal.begin(), minimal.end(), sa) !=
              minimal.end());
  EXPECT_TRUE(std::find(maximal.begin(), maximal.end(), sab) !=
              maximal.end());
}

TEST(ModelSetTest, ProjectionDeduplicates) {
  const Alphabet big({0, 1});
  const Alphabet small({0});
  const ModelSet models(big, {Interpretation::FromIndex(2, 0b00),
                              Interpretation::FromIndex(2, 0b10),
                              Interpretation::FromIndex(2, 0b01)});
  EXPECT_EQ(2u, models.ProjectTo(small).size());
}

}  // namespace
}  // namespace revise
