// Death tests for the CHECK / DCHECK / CHECK_OK macro families
// (util/check.h): failures must abort and the message must carry the
// expression, both operand values, and the failing location.

#include "util/check.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/status.h"

namespace revise {
namespace {

struct Unprintable {
  int tag = 0;
  bool operator==(const Unprintable&) const = default;
};

TEST(CheckTest, PassingChecksAreSilent) {
  REVISE_CHECK(1 + 1 == 2);
  REVISE_CHECK_EQ(4, 4);
  REVISE_CHECK_NE(4, 5);
  REVISE_CHECK_LT(4, 5);
  REVISE_CHECK_LE(5, 5);
  REVISE_CHECK_GT(5, 4);
  REVISE_CHECK_GE(5, 5);
  REVISE_CHECK_OK(Status::Ok());
  REVISE_CHECK_OK(StatusOr<int>(7));
}

TEST(CheckDeathTest, CheckPrintsConditionAndLocation) {
  EXPECT_DEATH(REVISE_CHECK(2 + 2 == 5),
               "CHECK failed: 2 \\+ 2 == 5 at .*check_test\\.cc:[0-9]+");
}

TEST(CheckDeathTest, CheckEqPrintsBothOperands) {
  const int lhs = 3;
  const int rhs = 7;
  EXPECT_DEATH(REVISE_CHECK_EQ(lhs, rhs),
               "CHECK failed: lhs == rhs \\(3 vs. 7\\)");
}

TEST(CheckDeathTest, CheckLtPrintsStreamedValues) {
  const std::string a = "zebra";
  const std::string b = "apple";
  EXPECT_DEATH(REVISE_CHECK_LT(a, b),
               "CHECK failed: a < b \\(zebra vs. apple\\)");
}

TEST(CheckDeathTest, UnprintableOperandsDegradeGracefully) {
  const Unprintable x{1};
  const Unprintable y{2};
  EXPECT_DEATH(REVISE_CHECK_EQ(x, y),
               "CHECK failed: x == y \\(<unprintable> vs. <unprintable>\\)");
}

TEST(CheckTest, CheckOpEvaluatesOperandsExactlyOnce) {
  int evaluations = 0;
  const auto bump = [&evaluations] { return ++evaluations; };
  REVISE_CHECK_LE(bump(), 100);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckDeathTest, CheckOkPrintsStatus) {
  EXPECT_DEATH(REVISE_CHECK_OK(InvalidArgumentError("bad alphabet")),
               "is OK \\(got INVALID_ARGUMENT: bad alphabet\\)");
}

TEST(CheckDeathTest, CheckOkPrintsStatusOrError) {
  const StatusOr<int> result = NotFoundError("no such model");
  EXPECT_DEATH(REVISE_CHECK_OK(result),
               "is OK \\(got NOT_FOUND: no such model\\)");
}

#if REVISE_DCHECK_IS_ON()

TEST(CheckDeathTest, DcheckFiresWhenEnabled) {
  EXPECT_DEATH(REVISE_DCHECK(false), "CHECK failed: false");
  EXPECT_DEATH(REVISE_DCHECK_EQ(1, 2), "CHECK failed: 1 == 2 \\(1 vs. 2\\)");
}

#else  // REVISE_DCHECK_IS_ON()

TEST(CheckTest, DcheckCompiledOutDoesNotEvaluateArguments) {
  int evaluations = 0;
  const auto bump = [&evaluations] { return ++evaluations; };
  REVISE_DCHECK(bump() > 0);
  REVISE_DCHECK_EQ(bump(), bump());
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckTest, DcheckCompiledOutIsSilentOnFailure) {
  REVISE_DCHECK(false);
  REVISE_DCHECK_EQ(1, 2);
  REVISE_DCHECK_GT(0, 1);
}

#endif  // REVISE_DCHECK_IS_ON()

}  // namespace
}  // namespace revise
