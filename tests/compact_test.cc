#include <gtest/gtest.h>

#include <algorithm>

#include "compact/bounded_revision.h"
#include "compact/circuits.h"
#include "compact/iterated_revision.h"
#include "compact/query.h"
#include "compact/single_revision.h"
#include "hardness/random_instances.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "model/canonical.h"
#include "revision/iterated.h"
#include "revision/operator.h"
#include "solve/distance.h"
#include "solve/services.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace revise {
namespace {

using ::revise::testing::BruteForceModels;
using ::revise::testing::BruteForceSat;

// -------------------------------------------------------------------------
// Counting circuits.
// -------------------------------------------------------------------------
class CounterCircuitTest : public ::testing::TestWithParam<int> {};

TEST_P(CounterCircuitTest, GeqOutputsMatchPopcount) {
  const int n = GetParam();
  Vocabulary vocabulary;
  std::vector<Var> inputs_vars;
  std::vector<Formula> inputs;
  for (int i = 0; i < n; ++i) {
    const Var v = vocabulary.Intern("i" + std::to_string(i));
    inputs_vars.push_back(v);
    inputs.push_back(Formula::Variable(v));
  }
  const CounterCircuit counter =
      BuildCounter(inputs, static_cast<size_t>(n), &vocabulary);
  // Every full assignment of the inputs extends to exactly one model of
  // the definitions, whose geq outputs reflect the popcount.
  std::vector<Var> all_vars = inputs_vars;
  all_vars.insert(all_vars.end(), counter.aux.begin(), counter.aux.end());
  const Alphabet alphabet(all_vars);
  const ModelSet defs_models =
      EnumerateModels(counter.definitions, alphabet);
  // Functional determination: 2^n models.
  EXPECT_EQ(uint64_t{1} << n, defs_models.size());
  for (const Interpretation& m : defs_models) {
    size_t count = 0;
    for (const Var v : inputs_vars) {
      if (m.Get(*alphabet.IndexOf(v))) ++count;
    }
    for (size_t j = 0; j <= static_cast<size_t>(n) + 1; ++j) {
      const Formula geq = counter.AtLeast(j);
      EXPECT_EQ(count >= j, Evaluate(geq, alphabet, m))
          << "n=" << n << " j=" << j;
    }
    for (size_t k = 0; k <= static_cast<size_t>(n); ++k) {
      EXPECT_EQ(count == k, Evaluate(counter.Exactly(k), alphabet, m));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CounterCircuitTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

class ExaTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExaTest, TrueIffHammingDistanceExactlyK) {
  const int n = std::get<0>(GetParam());
  const size_t k = static_cast<size_t>(std::get<1>(GetParam()));
  Vocabulary vocabulary;
  std::vector<Var> x;
  std::vector<Var> y;
  for (int i = 0; i < n; ++i) {
    x.push_back(vocabulary.Intern("x" + std::to_string(i)));
    y.push_back(vocabulary.Intern("y" + std::to_string(i)));
  }
  const Formula exa = ExaFormula(k, x, y, &vocabulary);
  // Project models onto X ∪ Y; expect exactly the pairs at distance k.
  std::vector<Var> xy = x;
  xy.insert(xy.end(), y.begin(), y.end());
  const Alphabet alphabet(xy);
  const ModelSet projected = EnumerateModels(exa, alphabet);
  size_t expected = 0;
  for (uint64_t xv = 0; xv < (uint64_t{1} << n); ++xv) {
    for (uint64_t yv = 0; yv < (uint64_t{1} << n); ++yv) {
      if (static_cast<size_t>(std::popcount(xv ^ yv)) == k) ++expected;
    }
  }
  EXPECT_EQ(expected, projected.size());
  for (const Interpretation& m : projected) {
    size_t distance = 0;
    for (int i = 0; i < n; ++i) {
      const bool xb = m.Get(*alphabet.IndexOf(x[i]));
      const bool yb = m.Get(*alphabet.IndexOf(y[i]));
      if (xb != yb) ++distance;
    }
    EXPECT_EQ(k, distance);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExaTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

TEST(ExaTest, SizeGrowsPolynomially) {
  // |EXA(k, X, Y, W)| should be O(n*k); check it stays well under n^3.
  Vocabulary vocabulary;
  for (int n : {4, 8, 16, 32}) {
    std::vector<Var> x;
    std::vector<Var> y;
    for (int i = 0; i < n; ++i) {
      x.push_back(vocabulary.Fresh("x"));
      y.push_back(vocabulary.Fresh("y"));
    }
    const Formula exa = ExaFormula(n / 2, x, y, &vocabulary);
    EXPECT_LT(exa.VarOccurrences(),
              static_cast<uint64_t>(n) * n * n);
  }
}

TEST(CountLessThanTest, ComparesPopcounts) {
  Vocabulary vocabulary;
  std::vector<Var> a_vars;
  std::vector<Var> b_vars;
  std::vector<Formula> a;
  std::vector<Formula> b;
  for (int i = 0; i < 3; ++i) {
    a_vars.push_back(vocabulary.Intern("a" + std::to_string(i)));
    b_vars.push_back(vocabulary.Intern("b" + std::to_string(i)));
    a.push_back(Formula::Variable(a_vars.back()));
    b.push_back(Formula::Variable(b_vars.back()));
  }
  const Formula less = CountLessThan(a, b, &vocabulary);
  std::vector<Var> ab = a_vars;
  ab.insert(ab.end(), b_vars.begin(), b_vars.end());
  const Alphabet alphabet(ab);
  const ModelSet projected = EnumerateModels(less, alphabet);
  size_t expected = 0;
  for (uint64_t av = 0; av < 8; ++av) {
    for (uint64_t bv = 0; bv < 8; ++bv) {
      if (std::popcount(av) < std::popcount(bv)) ++expected;
    }
  }
  EXPECT_EQ(expected, projected.size());
}

// -------------------------------------------------------------------------
// Single-revision compact representations (Theorems 3.4, 3.5).
// -------------------------------------------------------------------------
class SingleCompactRandomTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    for (int i = 0; i < 5; ++i) {
      vars_.push_back(vocabulary_.Intern("v" + std::to_string(i)));
    }
    alphabet_ = Alphabet(vars_);
  }

  Formula DrawSatisfiable(Rng* rng) {
    for (;;) {
      Formula f = RandomFormula(vars_, 4, rng);
      if (BruteForceSat(f, alphabet_)) return f;
    }
  }

  Vocabulary vocabulary_;
  std::vector<Var> vars_;
  Alphabet alphabet_;
};

TEST_P(SingleCompactRandomTest, DalalCompactIsQueryEquivalent) {
  Rng rng(GetParam());
  const DalalOperator dalal;
  for (int trial = 0; trial < 15; ++trial) {
    const Formula t = DrawSatisfiable(&rng);
    const Formula p = DrawSatisfiable(&rng);
    const Formula compact = DalalCompact(t, p, &vocabulary_);
    const ModelSet reference =
        dalal.ReviseModels(Theory({t}), p, alphabet_);
    EXPECT_EQ(reference, EnumerateModels(compact, alphabet_))
        << "T=" << ToString(t, vocabulary_)
        << " P=" << ToString(p, vocabulary_);
  }
}

TEST_P(SingleCompactRandomTest, WeberCompactIsQueryEquivalent) {
  Rng rng(GetParam() + 50);
  const WeberOperator weber;
  for (int trial = 0; trial < 15; ++trial) {
    const Formula t = DrawSatisfiable(&rng);
    const Formula p = DrawSatisfiable(&rng);
    const Formula compact = WeberCompact(t, p, &vocabulary_);
    const ModelSet reference =
        weber.ReviseModels(Theory({t}), p, alphabet_);
    EXPECT_EQ(reference, EnumerateModels(compact, alphabet_))
        << "T=" << ToString(t, vocabulary_)
        << " P=" << ToString(p, vocabulary_);
  }
}

TEST_P(SingleCompactRandomTest, BoundedFormulasAreLogicallyEquivalent) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 8; ++trial) {
    const Formula t = DrawSatisfiable(&rng);
    // Bounded P: over the first 2 letters only.
    std::vector<Var> p_vars(vars_.begin(), vars_.begin() + 2);
    Formula p = RandomFormula(p_vars, 3, &rng);
    if (!BruteForceSat(p, alphabet_)) continue;
    const Theory theory({t});

    struct Case {
      const char* name;
      Formula compact;
      const RevisionOperator* op;
    };
    const Case cases[] = {
        {"Winslett(5)", WinslettBounded(t, p),
         OperatorById(OperatorId::kWinslett)},
        {"Forbus(6)", ForbusBounded(t, p),
         OperatorById(OperatorId::kForbus)},
        {"Satoh(7)", SatohBounded(t, p), OperatorById(OperatorId::kSatoh)},
        {"Dalal(8)", DalalBounded(t, p), OperatorById(OperatorId::kDalal)},
        {"Weber(9)", WeberBounded(t, p), OperatorById(OperatorId::kWeber)},
        {"Borgida", BorgidaBounded(t, p),
         OperatorById(OperatorId::kBorgida)},
    };
    for (const Case& c : cases) {
      const ModelSet reference = c.op->ReviseModels(theory, p, alphabet_);
      // Logical equivalence: no new letters, identical model sets.
      EXPECT_EQ(reference, BruteForceModels(c.compact, alphabet_))
          << c.name << " T=" << ToString(t, vocabulary_)
          << " P=" << ToString(p, vocabulary_);
      // No letters beyond V(T) ∪ V(P).
      for (const Var v : c.compact.Vars()) {
        EXPECT_TRUE(alphabet_.Contains(v)) << c.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleCompactRandomTest,
                         ::testing::Range(300, 306));

TEST(SingleCompactTest, Section4ExampleForbusFormula) {
  // The worked example after Theorem 4.5: T = a&b&c&d&e, P = !a | !b.
  Vocabulary vocabulary;
  const Formula t = ParseOrDie("a & b & c & d & e", &vocabulary);
  const Formula p = ParseOrDie("!a | !b", &vocabulary);
  const Formula compact = ForbusBounded(t, p);
  // Exactly two models: {b,c,d,e} and {a,c,d,e}.
  const Alphabet alphabet(UnionOfVars(std::vector<Formula>{t, p}));
  const ModelSet models = BruteForceModels(compact, alphabet);
  EXPECT_EQ(2u, models.size());
  EXPECT_TRUE(AreEquivalent(
      compact, ParseOrDie("(!a & b & c & d & e) | (a & !b & c & d & e)",
                          &vocabulary)));
}

TEST(SingleCompactTest, Section4ExampleSatohDalalWeberFormulas) {
  Vocabulary vocabulary;
  const Formula t = ParseOrDie("a & b & c & d & e", &vocabulary);
  const Formula p = ParseOrDie("!a | !b", &vocabulary);
  const Formula two_models = ParseOrDie(
      "(!a & b & c & d & e) | (a & !b & c & d & e)", &vocabulary);
  EXPECT_TRUE(AreEquivalent(SatohBounded(t, p), two_models));
  EXPECT_TRUE(AreEquivalent(DalalBounded(t, p), two_models));
  const Formula three_models = ParseOrDie(
      "(!a & b & c & d & e) | (a & !b & c & d & e) | (!a & !b & c & d & e)",
      &vocabulary);
  EXPECT_TRUE(AreEquivalent(WeberBounded(t, p), three_models));
}

TEST(SingleCompactTest, WidtioCompactSizeIsBounded) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a; b; c; a -> d", &vocabulary);
  const Formula p = ParseOrDie("!a", &vocabulary);
  const Formula compact = WidtioCompact(t, p);
  EXPECT_LE(compact.VarOccurrences(),
            t.VarOccurrences() + p.VarOccurrences());
  const WidtioOperator widtio;
  EXPECT_TRUE(AreEquivalent(compact, widtio.ReviseFormula(t, p)));
}

TEST(SingleCompactTest, DegenerateCases) {
  Vocabulary vocabulary;
  const Formula t = ParseOrDie("a", &vocabulary);
  const Formula contradiction = ParseOrDie("a & !a", &vocabulary);
  EXPECT_TRUE(DalalCompact(t, contradiction, &vocabulary).IsFalse());
  EXPECT_TRUE(WeberCompact(t, contradiction, &vocabulary).IsFalse());
  EXPECT_TRUE(
      AreEquivalent(DalalCompact(contradiction, t, &vocabulary), t));
  EXPECT_TRUE(
      AreEquivalent(WeberCompact(contradiction, t, &vocabulary), t));
  EXPECT_TRUE(WinslettBounded(t, contradiction).IsFalse());
  EXPECT_TRUE(AreEquivalent(WinslettBounded(contradiction, t), t));
}

// Dalal's construction must NOT be logically equivalent in general — it
// introduces fresh letters (this is the paper's criterion (1) vs (2)
// distinction, Theorem 3.6).
TEST(SingleCompactTest, DalalCompactUsesFreshLetters) {
  Vocabulary vocabulary;
  const Formula t = ParseOrDie("a & b & c", &vocabulary);
  const Formula p = ParseOrDie("!a | !b", &vocabulary);
  const Formula compact = DalalCompact(t, p, &vocabulary);
  const Alphabet original(UnionOfVars(std::vector<Formula>{t, p}));
  bool has_fresh = false;
  for (const Var v : compact.Vars()) {
    if (!original.Contains(v)) has_fresh = true;
  }
  EXPECT_TRUE(has_fresh);
}

// -------------------------------------------------------------------------
// Query answering through the compact route (compact/query.h).
// -------------------------------------------------------------------------
class CompactQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(CompactQueryTest, MatchesReferenceEntailment) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(vocabulary.Intern("cq" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(GetParam());
  const DalalOperator dalal;
  const WeberOperator weber;
  for (int trial = 0; trial < 10; ++trial) {
    Formula t = RandomFormula(vars, 3, &rng);
    Formula p = RandomFormula(vars, 3, &rng);
    if (!BruteForceSat(t, alphabet) || !BruteForceSat(p, alphabet)) {
      continue;
    }
    const Formula q = RandomFormula(vars, 3, &rng);
    ASSERT_EQ(dalal.Entails(Theory({t}), p, q),
              DalalEntailsCompact(t, p, q, &vocabulary));
    ASSERT_EQ(weber.Entails(Theory({t}), p, q),
              WeberEntailsCompact(t, p, q, &vocabulary));
  }
}

TEST_P(CompactQueryTest, BinarySearchDistanceMatchesLinear) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(vocabulary.Intern("bs" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(GetParam() + 70);
  for (int trial = 0; trial < 15; ++trial) {
    const Formula t = RandomFormula(vars, 4, &rng);
    const Formula p = RandomFormula(vars, 4, &rng);
    EXPECT_EQ(MinHammingDistance(t, p, alphabet),
              MinHammingDistanceBinarySearch(t, p, alphabet));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactQueryTest,
                         ::testing::Range(600, 604));

TEST(CompactQueryTest2, DegenerateCases) {
  Vocabulary vocabulary;
  const Formula t = ParseOrDie("a", &vocabulary);
  const Formula contradiction = ParseOrDie("a & !a", &vocabulary);
  const Formula q = ParseOrDie("a | !a", &vocabulary);
  // Unsatisfiable P: the revision is empty and entails everything.
  EXPECT_TRUE(DalalEntailsCompact(t, contradiction, q, &vocabulary));
  EXPECT_TRUE(DalalEntailsCompact(t, contradiction,
                                  ParseOrDie("a & !a", &vocabulary),
                                  &vocabulary));
  // Unsatisfiable T: the revision is P.
  EXPECT_TRUE(DalalEntailsCompact(contradiction, t, t, &vocabulary));
  EXPECT_FALSE(DalalEntailsCompact(contradiction, t,
                                   ParseOrDie("b9", &vocabulary),
                                   &vocabulary));
}

// -------------------------------------------------------------------------
// Iterated compact representations (Theorems 5.1, Corollary 5.2,
// Theorems 6.1-6.3 / Corollary 6.4).
// -------------------------------------------------------------------------
class IteratedCompactTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    for (int i = 0; i < 5; ++i) {
      vars_.push_back(vocabulary_.Intern("v" + std::to_string(i)));
    }
    alphabet_ = Alphabet(vars_);
  }

  Formula DrawSatisfiable(const std::vector<Var>& vars, Rng* rng) {
    for (;;) {
      Formula f = RandomFormula(vars, 3, rng);
      if (BruteForceSat(f, alphabet_)) return f;
    }
  }

  Vocabulary vocabulary_;
  std::vector<Var> vars_;
  Alphabet alphabet_;
};

TEST_P(IteratedCompactTest, DalalPhiIsQueryEquivalentStepwise) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const Formula t = DrawSatisfiable(vars_, &rng);
    std::vector<Formula> updates;
    for (int i = 0; i < 3; ++i) {
      updates.push_back(DrawSatisfiable(vars_, &rng));
    }
    const auto phis = DalalCompactIterated(t, updates, alphabet_.vars(),
                                           &vocabulary_);
    ASSERT_EQ(updates.size(), phis.size());
    for (size_t i = 0; i < updates.size(); ++i) {
      const std::vector<Formula> prefix(updates.begin(),
                                        updates.begin() + i + 1);
      const ModelSet reference = IteratedReviseModels(
          DalalOperator(), Theory({t}), prefix, alphabet_);
      EXPECT_EQ(reference, EnumerateModels(phis[i], alphabet_))
          << "step " << i;
    }
  }
}

TEST_P(IteratedCompactTest, WeberFormula10IsQueryEquivalentStepwise) {
  Rng rng(GetParam() + 40);
  for (int trial = 0; trial < 5; ++trial) {
    const Formula t = DrawSatisfiable(vars_, &rng);
    std::vector<Formula> updates;
    for (int i = 0; i < 3; ++i) {
      updates.push_back(DrawSatisfiable(vars_, &rng));
    }
    const auto psis = WeberCompactIterated(t, updates, alphabet_.vars(),
                                           &vocabulary_);
    for (size_t i = 0; i < updates.size(); ++i) {
      const std::vector<Formula> prefix(updates.begin(),
                                        updates.begin() + i + 1);
      const ModelSet reference = IteratedReviseModels(
          WeberOperator(), Theory({t}), prefix, alphabet_);
      EXPECT_EQ(reference, EnumerateModels(psis[i], alphabet_))
          << "step " << i;
    }
  }
}

TEST_P(IteratedCompactTest, BoundedIteratedStepsAreQueryEquivalent) {
  Rng rng(GetParam() + 80);
  // Bounded updates over 2 letters each.
  const std::vector<Var> p_vars(vars_.begin(), vars_.begin() + 2);
  struct StepCase {
    const char* name;
    CompactStepFn step;
    OperatorId op;
  };
  const StepCase cases[] = {
      {"Winslett(16)", &WinslettCompactStep, OperatorId::kWinslett},
      {"Borgida", &BorgidaCompactStep, OperatorId::kBorgida},
      {"Satoh(13)", &SatohCompactStep, OperatorId::kSatoh},
      {"Forbus(14)", &ForbusCompactStep, OperatorId::kForbus},
  };
  for (int trial = 0; trial < 4; ++trial) {
    const Formula t = DrawSatisfiable(vars_, &rng);
    std::vector<Formula> updates;
    for (int i = 0; i < 3; ++i) {
      updates.push_back(DrawSatisfiable(p_vars, &rng));
    }
    for (const StepCase& c : cases) {
      const auto steps =
          CompactIterated(c.step, t, updates, &vocabulary_);
      for (size_t i = 0; i < updates.size(); ++i) {
        const std::vector<Formula> prefix(updates.begin(),
                                          updates.begin() + i + 1);
        const ModelSet reference = IteratedReviseModels(
            *OperatorById(c.op), Theory({t}), prefix, alphabet_);
        ASSERT_EQ(reference, EnumerateModels(steps[i], alphabet_))
            << c.name << " step " << i
            << " T=" << ToString(t, vocabulary_);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IteratedCompactTest,
                         ::testing::Range(400, 404));

TEST(IteratedCompactTest2, Section5WeberExampleFormulaShape) {
  // The Section 5 example: T = x1&..&x5, P1 = !x1 | !x2, P2 = !x5.
  Vocabulary vocabulary;
  const Formula t = ParseOrDie("x1 & x2 & x3 & x4 & x5", &vocabulary);
  const std::vector<Formula> updates = {
      ParseOrDie("!x1 | !x2", &vocabulary), ParseOrDie("!x5", &vocabulary)};
  std::vector<Var> x;
  for (const char* name : {"x1", "x2", "x3", "x4", "x5"}) {
    x.push_back(vocabulary.Find(name));
  }
  const auto psis =
      WeberCompactIterated(t, updates, x, &vocabulary);
  const Alphabet alphabet(x);
  // Expected models: {x1,x3,x4}, {x2,x3,x4}, {x3,x4}.
  const ModelSet projected = EnumerateModels(psis.back(), alphabet);
  EXPECT_EQ(3u, projected.size());
  // The formula's size stays linear: |T| + |P1| + |P2| occurrences.
  EXPECT_EQ(t.VarOccurrences() + updates[0].VarOccurrences() +
                updates[1].VarOccurrences(),
            psis.back().VarOccurrences());
}

TEST(IteratedCompactTest2, LinearGrowthOfCompactChains) {
  // Sizes of the per-step compact formulas must grow (at most) linearly
  // in the number of bounded revisions — this is the content of
  // Theorems 5.1/6.1 as opposed to the exponential naive representation.
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
  }
  std::vector<Formula> all;
  for (const Var v : vars) all.push_back(Formula::Variable(v));
  const Formula t = ConjoinAll(all);
  // Alternate !x0 / x0 updates, 8 steps.
  std::vector<Formula> updates;
  for (int i = 0; i < 8; ++i) {
    updates.push_back(Formula::Literal(vars[0], i % 2 == 0 ? false : true));
  }
  const auto steps =
      CompactIterated(&WinslettCompactStep, t, updates, &vocabulary);
  // Per-step increment must be bounded by a constant (the update size is
  // constant), so total size is O(m).
  uint64_t prev = t.VarOccurrences();
  uint64_t max_increment = 0;
  for (const Formula& f : steps) {
    const uint64_t size = f.VarOccurrences();
    max_increment = std::max(max_increment, size - prev);
    prev = size;
  }
  EXPECT_LE(max_increment, 40u);
}

}  // namespace
}  // namespace revise
