// Tests for operation-scoped cost attribution (obs/profile.h) and the
// EXPLAIN entry point (revision/explain.h): scope nesting builds one
// tree with inclusive counter deltas, peaks propagate to ancestors,
// pool-shard scopes attach to the spawning operation, the node budget
// drops and counts overflow, the forest serializes with the counter
// keys, and — the attribution acceptance rule — at one thread the
// per-node exclusive costs of a revision sum exactly to the global
// counter deltas of the call.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/librevise.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/parallel.h"

namespace revise {
namespace {

using obs::ProfileNode;
using obs::ProfileScope;
using obs::Registry;

size_t KeyIndex(std::string_view key) {
  const auto& keys = obs::ProfileCounterKeys();
  for (size_t i = 0; i < keys.size(); ++i) {
    if (key == keys[i]) return i;
  }
  ADD_FAILURE() << "unknown profile key " << key;
  return 0;
}

uint64_t SumExclusive(const ProfileNode& node, size_t counter) {
  uint64_t total = node.Exclusive(counter);
  for (const auto& child : node.children) {
    total += SumExclusive(*child, counter);
  }
  return total;
}

size_t CountNodes(const ProfileNode& node) {
  size_t count = 1;
  for (const auto& child : node.children) count += CountNodes(*child);
  return count;
}

const RevisionOperator* FindOperator(std::string_view name) {
  for (const RevisionOperator* op : AllOperators()) {
    if (op->name() == name) return op;
  }
  return nullptr;
}

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TakeProfiles();  // drop trees completed by earlier tests
    obs::SetProfilingEnabled(true);
  }
  void TearDown() override {
    obs::SetProfilingEnabled(false);
    obs::TakeProfiles();
  }
};

TEST_F(ProfileTest, NestedScopesBuildOneTreeWithInclusiveDeltas) {
  obs::Counter* solves = Registry::Global().GetCounter("sat.solves");
  const size_t i_solves = KeyIndex("sat.solves");
  {
    ProfileScope outer("test.profile_outer");
    solves->Increment(2);
    {
      ProfileScope inner("test.profile_", "inner");
      solves->Increment(3);
    }
    solves->Increment(1);
  }
  const auto forest = obs::TakeProfiles();
  ASSERT_EQ(forest.size(), 1u);
  const ProfileNode& root = *forest[0];
  EXPECT_EQ(root.name, "test.profile_outer");
  ASSERT_EQ(root.children.size(), 1u);
  const ProfileNode& inner = *root.children[0];
  EXPECT_EQ(inner.name, "test.profile_inner");
  EXPECT_EQ(inner.parent, &root);
  // Inclusive counts cover descendants; exclusive subtracts them.
  EXPECT_EQ(root.inclusive[i_solves], 6u);
  EXPECT_EQ(inner.inclusive[i_solves], 3u);
  EXPECT_EQ(root.Exclusive(i_solves), 3u);
  EXPECT_EQ(inner.Exclusive(i_solves), 3u);
  EXPECT_GE(root.duration_ns, inner.duration_ns);
}

TEST_F(ProfileTest, DisabledProfilingRecordsNothing) {
  obs::SetProfilingEnabled(false);
  {
    ProfileScope scope("test.profile_disabled");
  }
  EXPECT_TRUE(obs::TakeProfiles().empty());
}

TEST_F(ProfileTest, PeakModelSetPropagatesToAncestors) {
  {
    ProfileScope outer("test.profile_peak_outer");
    obs::NoteModelSetCardinality(4);
    {
      ProfileScope inner("test.profile_peak_inner");
      obs::NoteModelSetCardinality(10);
    }
    obs::NoteModelSetCardinality(7);
  }
  const auto forest = obs::TakeProfiles();
  ASSERT_EQ(forest.size(), 1u);
  EXPECT_EQ(forest[0]->peak_model_set_models, 10u);
  ASSERT_EQ(forest[0]->children.size(), 1u);
  EXPECT_EQ(forest[0]->children[0]->peak_model_set_models, 10u);
}

TEST_F(ProfileTest, PoolShardScopesAttachToTheSpawningOperation) {
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreadsOverride(threads);
    {
      ProfileScope root("test.profile_par_root");
      ParallelMapRanges<int>(32, 1, [](size_t begin, size_t end) {
        ProfileScope shard("test.profile_par_shard");
        return static_cast<int>(end - begin);
      });
    }
    SetParallelThreadsOverride(0);
    const auto forest = obs::TakeProfiles();
    // One rooted tree per thread count: shard scopes executed on pool
    // workers attach under the spawning operation, never as new roots.
    ASSERT_EQ(forest.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(forest[0]->name, "test.profile_par_root");
    ASSERT_GE(forest[0]->children.size(), 1u) << "threads=" << threads;
    for (const auto& child : forest[0]->children) {
      EXPECT_EQ(child->name, "test.profile_par_shard");
      EXPECT_TRUE(child->children.empty());
    }
  }
}

TEST_F(ProfileTest, NodeBudgetDropsAndCountsOverflow) {
  obs::Counter* dropped =
      Registry::Global().GetCounter("obs.profile_nodes_dropped");
  const uint64_t before = dropped->Value();
  for (size_t i = 0; i < obs::kMaxLiveProfileNodes + 5; ++i) {
    ProfileScope scope("test.profile_budget");
  }
  EXPECT_EQ(dropped->Value(), before + 5);
  EXPECT_EQ(obs::TakeProfiles().size(), obs::kMaxLiveProfileNodes);
  // The drain resets the budget.
  {
    ProfileScope scope("test.profile_after_drain");
  }
  EXPECT_EQ(obs::TakeProfiles().size(), 1u);
  EXPECT_EQ(dropped->Value(), before + 5);
}

TEST_F(ProfileTest, ForestSerializesWithCounterKeys) {
  {
    ProfileScope scope("test.profile_json");
    obs::NoteModelSetCardinality(3);
  }
  const obs::Json forest = obs::ProfileForestToJson();
  ASSERT_EQ(forest.size(), 1u);
  const obs::Json& node = forest.at(0);
  EXPECT_EQ(node.Find("name")->AsString(), "test.profile_json");
  EXPECT_TRUE(node.Has("span_id"));
  EXPECT_TRUE(node.Has("duration_ns"));
  EXPECT_EQ(node.Find("peak_model_set_models")->AsUint(), 3u);
  EXPECT_TRUE(node.Has("peak_rss_delta_bytes"));
  for (const char* key : obs::ProfileCounterKeys()) {
    EXPECT_TRUE(node.Find("counters")->Has(key)) << key;
  }
  EXPECT_TRUE(node.Find("children")->is_array());
  // Serialization does not drain: the forest is still there for the
  // explicit drain.
  EXPECT_EQ(obs::ProfileForestToJson().size(), 1u);
  EXPECT_EQ(obs::TakeProfiles().size(), 1u);
}

// The acceptance rule: EXPLAIN on a Table-1-shaped instance (a complete
// knowledge base revised by the negation of a conjunction, the paper's
// explosion driver) yields a rooted cost tree whose per-node exclusive
// SAT-solve and model-enumeration counts sum exactly to the global
// counter deltas of the call — exact at REVISE_THREADS=1 per the
// documented attribution rules.
TEST(ExplainTest, ExclusiveCostsSumToGlobalCounterDeltasAtOneThread) {
  SetParallelThreadsOverride(1);
  Vocabulary vocabulary;
  Theory theory;
  for (int i = 0; i < 6; ++i) {
    theory.Add(
        Formula::Variable(vocabulary.Intern("x" + std::to_string(i))));
  }
  StatusOr<Formula> mu = Parse("!(x0 & x1) | !x2", &vocabulary);
  ASSERT_TRUE(mu.ok()) << mu.status().ToString();
  const RevisionOperator* op = FindOperator("Winslett");
  ASSERT_NE(op, nullptr);

  obs::Counter* solves = Registry::Global().GetCounter("sat.solves");
  obs::Counter* models =
      Registry::Global().GetCounter("solve.models_enumerated");
  const uint64_t solves_before = solves->Value();
  const uint64_t models_before = models->Value();
  const Explanation explanation = Explain(*op, theory, *mu);
  const uint64_t solves_delta = solves->Value() - solves_before;
  const uint64_t models_delta = models->Value() - models_before;
  SetParallelThreadsOverride(0);

  ASSERT_NE(explanation.profile, nullptr);
  EXPECT_EQ(explanation.profile->name,
            "explain." + std::string(op->name()));
  EXPECT_FALSE(explanation.result.empty());
  EXPECT_GT(models_delta, 0u);
  EXPECT_GE(CountNodes(*explanation.profile), 2u);

  const size_t i_solves = KeyIndex("sat.solves");
  const size_t i_models = KeyIndex("solve.models_enumerated");
  EXPECT_EQ(explanation.profile->inclusive[i_solves], solves_delta);
  EXPECT_EQ(explanation.profile->inclusive[i_models], models_delta);
  EXPECT_EQ(SumExclusive(*explanation.profile, i_solves), solves_delta);
  EXPECT_EQ(SumExclusive(*explanation.profile, i_models), models_delta);

  const std::string rendered = RenderExplanation(explanation);
  EXPECT_NE(rendered.find("model(s)"), std::string::npos);
  EXPECT_NE(rendered.find("explain."), std::string::npos);
  // Explain restored the profiling default (off) and drained its tree.
  EXPECT_FALSE(obs::ProfilingEnabled());
  EXPECT_TRUE(obs::TakeProfiles().empty());
}

}  // namespace
}  // namespace revise
