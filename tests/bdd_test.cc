#include <gtest/gtest.h>

#include "bdd/bdd.h"
#include "compact/single_revision.h"
#include "hardness/families.h"
#include "hardness/random_instances.h"
#include "logic/evaluate.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/transform.h"
#include "model/canonical.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace revise {
namespace {

using ::revise::testing::BruteForceModels;
using ::revise::testing::BruteForceSat;

TEST(BddTest, Terminals) {
  BddManager manager;
  EXPECT_EQ(BddManager::kFalse, manager.And(BddManager::kTrue,
                                            BddManager::kFalse));
  EXPECT_EQ(BddManager::kTrue, manager.Or(BddManager::kTrue,
                                          BddManager::kFalse));
  EXPECT_EQ(BddManager::kTrue, manager.Not(BddManager::kFalse));
}

TEST(BddTest, VarNodeIsCanonical) {
  BddManager manager;
  EXPECT_EQ(manager.VarNode(3), manager.VarNode(3));
  EXPECT_NE(manager.VarNode(3), manager.VarNode(4));
}

class BddRandomTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    for (int i = 0; i < 5; ++i) {
      vars_.push_back(vocabulary_.Intern("b" + std::to_string(i)));
    }
    alphabet_ = Alphabet(vars_);
  }

  Vocabulary vocabulary_;
  std::vector<Var> vars_;
  Alphabet alphabet_;
};

TEST_P(BddRandomTest, EvaluateMatchesTruthTable) {
  Rng rng(GetParam());
  BddManager manager(vars_);
  for (int trial = 0; trial < 30; ++trial) {
    const Formula f = RandomFormula(vars_, 4, &rng);
    const BddManager::NodeRef node = manager.FromFormula(f);
    for (uint64_t v = 0; v < 32; ++v) {
      const Interpretation m = Interpretation::FromIndex(5, v);
      ASSERT_EQ(Evaluate(f, alphabet_, m),
                manager.Evaluate(node, m, alphabet_))
          << ToString(f, vocabulary_);
    }
  }
}

TEST_P(BddRandomTest, CanonicityEquivalentFormulasSameNode) {
  Rng rng(GetParam() + 10);
  BddManager manager(vars_);
  for (int trial = 0; trial < 30; ++trial) {
    const Formula f = RandomFormula(vars_, 4, &rng);
    // NNF and a reparse of the printed form are logically equivalent.
    EXPECT_EQ(manager.FromFormula(f), manager.FromFormula(ToNnf(f)));
    EXPECT_EQ(manager.FromFormula(f),
              manager.FromFormula(
                  ParseOrDie(ToString(f, vocabulary_), &vocabulary_)));
    // And inequivalent formulas get different nodes.
    const Formula g = RandomFormula(vars_, 4, &rng);
    const bool equivalent = AreEquivalent(f, g);
    EXPECT_EQ(equivalent,
              manager.FromFormula(f) == manager.FromFormula(g));
  }
}

TEST_P(BddRandomTest, CountModelsMatchesBruteForce) {
  Rng rng(GetParam() + 20);
  BddManager manager(vars_);
  for (int trial = 0; trial < 30; ++trial) {
    const Formula f = RandomFormula(vars_, 4, &rng);
    EXPECT_EQ(BruteForceModels(f, alphabet_).size(),
              manager.CountModels(manager.FromFormula(f)));
  }
}

TEST_P(BddRandomTest, RestrictMatchesSubstitution) {
  Rng rng(GetParam() + 30);
  BddManager manager(vars_);
  for (int trial = 0; trial < 20; ++trial) {
    const Formula f = RandomFormula(vars_, 4, &rng);
    const Var v = vars_[rng.Below(vars_.size())];
    const bool value = rng.Chance(0.5);
    EXPECT_EQ(manager.FromFormula(Restrict(f, v, value)),
              manager.Restrict(manager.FromFormula(f), v, value));
  }
}

TEST_P(BddRandomTest, ExistsMatchesDisjunctionOfRestrictions) {
  Rng rng(GetParam() + 40);
  BddManager manager(vars_);
  for (int trial = 0; trial < 20; ++trial) {
    const Formula f = RandomFormula(vars_, 4, &rng);
    const Var v = vars_[rng.Below(vars_.size())];
    const Formula expected =
        Formula::Or(Restrict(f, v, false), Restrict(f, v, true));
    EXPECT_EQ(manager.FromFormula(expected),
              manager.Exists(manager.FromFormula(f), {v}));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomTest, ::testing::Range(700, 705));

TEST(BddTest, XorChainHasLinearNodeCount) {
  Vocabulary vocabulary;
  for (int n : {4, 8, 16}) {
    std::vector<Var> vars;
    Formula chain = Formula::False();
    for (int i = 0; i < n; ++i) {
      const Var v = vocabulary.Intern("x" + std::to_string(i));
      vars.push_back(v);
      chain = Formula::Xor(chain, Formula::Variable(v));
    }
    BddManager manager(vars);
    const auto node = manager.FromFormula(chain);
    // Parity functions have exactly 2n - 1 internal nodes.
    EXPECT_EQ(static_cast<size_t>(2 * n - 1), manager.NodeCount(node));
  }
}

// Section 7 cross-check: projecting the Theorem 3.4 compact formula onto
// the original alphabet (existentially quantifying the fresh Y/W letters)
// must produce the IDENTICAL canonical node as the reference revision —
// query equivalence verified by a second, independent engine.
TEST(BddSection7Test, DalalCompactProjectsToReferenceRevision) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(vocabulary.Intern("s" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(77);
  const DalalOperator dalal;
  for (int trial = 0; trial < 10; ++trial) {
    Formula t = RandomFormula(vars, 3, &rng);
    Formula p = RandomFormula(vars, 3, &rng);
    if (!BruteForceSat(t, alphabet) || !BruteForceSat(p, alphabet)) {
      continue;
    }
    const Formula compact = DalalCompact(t, p, &vocabulary);
    // Fresh letters to project out.
    std::vector<Var> aux;
    for (const Var v : compact.Vars()) {
      if (!alphabet.Contains(v)) aux.push_back(v);
    }
    BddManager manager(vars);  // original letters first in the order
    const auto projected =
        manager.Exists(manager.FromFormula(compact), aux);
    const ModelSet reference = dalal.ReviseModels(Theory({t}), p, alphabet);
    const auto reference_node =
        manager.FromFormula(CanonicalDnf(reference));
    EXPECT_EQ(reference_node, projected);
  }
}

TEST(BddTest, ExistsOverMultipleVariables) {
  Vocabulary vocabulary;
  const Var a = vocabulary.Intern("a");
  const Var b = vocabulary.Intern("b");
  const Var c = vocabulary.Intern("c");
  BddManager manager({a, b, c});
  // ∃b,c. (a & b & c) == a.
  const auto f = manager.FromFormula(ParseOrDie("a & b & c", &vocabulary));
  EXPECT_EQ(manager.VarNode(a), manager.Exists(f, {b, c}));
  // ∃a,b,c. (a & b & c) == true.
  EXPECT_EQ(BddManager::kTrue, manager.Exists(f, {a, b, c}));
  // ∃a. (a ^ b) == true.
  const auto g = manager.FromFormula(ParseOrDie("a ^ b", &vocabulary));
  EXPECT_EQ(BddManager::kTrue, manager.Exists(g, {a}));
}

TEST(BddTest, VariableOrderChangesNodeCountNotModelCount) {
  // The classic order-sensitive function (x1&y1) | (x2&y2) | (x3&y3):
  // interleaved order is linear, separated order is exponential.
  Vocabulary vocabulary;
  std::vector<Var> x;
  std::vector<Var> y;
  std::vector<Formula> terms;
  for (int i = 0; i < 3; ++i) {
    x.push_back(vocabulary.Intern("ox" + std::to_string(i)));
    y.push_back(vocabulary.Intern("oy" + std::to_string(i)));
    terms.push_back(Formula::And(Formula::Variable(x.back()),
                                 Formula::Variable(y.back())));
  }
  const Formula f = DisjoinAll(terms);
  std::vector<Var> interleaved = {x[0], y[0], x[1], y[1], x[2], y[2]};
  std::vector<Var> separated = {x[0], x[1], x[2], y[0], y[1], y[2]};
  BddManager good(interleaved);
  BddManager bad(separated);
  const auto good_node = good.FromFormula(f);
  const auto bad_node = bad.FromFormula(f);
  EXPECT_LT(good.NodeCount(good_node), bad.NodeCount(bad_node));
  EXPECT_EQ(good.CountModels(good_node), bad.CountModels(bad_node));
}

TEST(BddTest, HardFamilyGadgetCompiles) {
  // The Theorem 3.6 gadget compiles and counts models consistently with
  // enumeration.
  Vocabulary vocabulary;
  const Theorem36Family family(3, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  BddManager manager(alphabet.vars());
  const auto t_node = manager.FromFormula(family.t.AsFormula());
  EXPECT_EQ(EnumerateModels(family.t.AsFormula(), alphabet).size(),
            manager.CountModels(t_node));
}

// The ASK algorithm of Definition 7.1: model checking through the BDD in
// one O(|order|) walk agrees with the revised model set.
TEST(BddSection7Test, AskAgreesWithRevisedModelSet) {
  Vocabulary vocabulary;
  const Theory t = Theory({ParseOrDie("a & b & c", &vocabulary)});
  const Formula p = ParseOrDie("!a | !b", &vocabulary);
  const Alphabet alphabet = RevisionAlphabet(t, p);
  const ModelSet revised =
      DalalOperator().ReviseModels(t, p, alphabet);
  BddManager manager(alphabet.vars());
  const auto d = manager.FromFormula(CanonicalDnf(revised));
  for (uint64_t v = 0; v < (uint64_t{1} << alphabet.size()); ++v) {
    const Interpretation m = Interpretation::FromIndex(alphabet.size(), v);
    EXPECT_EQ(revised.Contains(m), manager.Evaluate(d, m, alphabet));
  }
}

}  // namespace
}  // namespace revise
