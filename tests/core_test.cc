#include <gtest/gtest.h>

#include <filesystem>

#include "core/advice_oracle.h"
#include "core/knowledge_base.h"
#include "core/io.h"
#include "core/librevise.h"  // umbrella must be self-contained
#include "hardness/random_instances.h"
#include "logic/parser.h"
#include "revision/formula_based.h"
#include "revision/iterated.h"
#include "solve/services.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace revise {
namespace {

using ::revise::testing::BruteForceSat;

TEST(KnowledgeBaseTest, CreateRejectsCompactGfuv) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a", &vocabulary);
  auto kb = KnowledgeBase::Create(t, OperatorById(OperatorId::kGfuv),
                                  RevisionStrategy::kCompact, &vocabulary);
  EXPECT_FALSE(kb.ok());
  auto kb2 = KnowledgeBase::Create(t, OperatorById(OperatorId::kNebel),
                                   RevisionStrategy::kCompact, &vocabulary);
  EXPECT_FALSE(kb2.ok());
  auto kb3 = KnowledgeBase::Create(t, OperatorById(OperatorId::kGfuv),
                                   RevisionStrategy::kDelayed, &vocabulary);
  EXPECT_TRUE(kb3.ok());
}

TEST(KnowledgeBaseTest, OfficeExampleEndToEnd) {
  // The George & Bill example through the public API.
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("g | b", &vocabulary);
  KnowledgeBase kb(t, OperatorById(OperatorId::kDalal),
                   RevisionStrategy::kDelayed, &vocabulary);
  EXPECT_FALSE(kb.Ask(ParseOrDie("b", &vocabulary)));
  kb.Revise(ParseOrDie("!g", &vocabulary));
  EXPECT_TRUE(kb.Ask(ParseOrDie("b", &vocabulary)));
  EXPECT_TRUE(kb.Ask(ParseOrDie("!g", &vocabulary)));
  EXPECT_EQ(1u, kb.num_revisions());
}

TEST(KnowledgeBaseTest, AskBeforeAnyRevision) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a; a -> b", &vocabulary);
  for (const RevisionStrategy strategy :
       {RevisionStrategy::kDelayed, RevisionStrategy::kExplicit,
        RevisionStrategy::kCompact}) {
    KnowledgeBase kb(t, OperatorById(OperatorId::kDalal), strategy,
                     &vocabulary);
    EXPECT_TRUE(kb.Ask(ParseOrDie("b", &vocabulary)));
    EXPECT_FALSE(kb.Ask(ParseOrDie("!a", &vocabulary)));
  }
}

struct StrategyAgreementCase {
  OperatorId op;
  int seed;
};

class StrategyAgreementTest
    : public ::testing::TestWithParam<StrategyAgreementCase> {};

TEST_P(StrategyAgreementTest, AllStrategiesAnswerQueriesIdentically) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(vocabulary.Intern("k" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  // Bounded-alphabet updates so the compact steps apply to all operators.
  const std::vector<Var> p_vars(vars.begin(), vars.begin() + 2);
  Rng rng(GetParam().seed);
  const RevisionOperator* op = OperatorById(GetParam().op);
  for (int trial = 0; trial < 3; ++trial) {
    Formula t_formula = RandomFormula(vars, 3, &rng);
    while (!BruteForceSat(t_formula, alphabet)) {
      t_formula = RandomFormula(vars, 3, &rng);
    }
    const Theory t({t_formula});
    KnowledgeBase delayed(t, op, RevisionStrategy::kDelayed, &vocabulary);
    KnowledgeBase explicit_kb(t, op, RevisionStrategy::kExplicit,
                              &vocabulary);
    KnowledgeBase compact(t, op, RevisionStrategy::kCompact, &vocabulary);
    for (int step = 0; step < 3; ++step) {
      Formula p = RandomFormula(p_vars, 2, &rng);
      while (!BruteForceSat(p, alphabet)) {
        p = RandomFormula(p_vars, 2, &rng);
      }
      delayed.Revise(p);
      explicit_kb.Revise(p);
      compact.Revise(p);
      // Model sets over the original letters agree across strategies.
      const ModelSet reference = delayed.Models();
      ASSERT_EQ(reference, explicit_kb.Models())
          << op->name() << " step " << step;
      ASSERT_EQ(reference.ProjectTo(alphabet),
                compact.Models().ProjectTo(alphabet))
          << op->name() << " step " << step;
      // Spot-check queries.
      for (int q = 0; q < 4; ++q) {
        const Formula query = RandomFormula(vars, 2, &rng);
        const bool expected = delayed.Ask(query);
        ASSERT_EQ(expected, explicit_kb.Ask(query)) << op->name();
        ASSERT_EQ(expected, compact.Ask(query)) << op->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Operators, StrategyAgreementTest,
    ::testing::Values(
        StrategyAgreementCase{OperatorId::kDalal, 1},
        StrategyAgreementCase{OperatorId::kWeber, 2},
        StrategyAgreementCase{OperatorId::kWinslett, 3},
        StrategyAgreementCase{OperatorId::kBorgida, 4},
        StrategyAgreementCase{OperatorId::kSatoh, 5},
        StrategyAgreementCase{OperatorId::kForbus, 6},
        StrategyAgreementCase{OperatorId::kWidtio, 7}));

TEST(KnowledgeBaseTest, IsModelMatchesModels) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a & b & c", &vocabulary);
  KnowledgeBase kb(t, OperatorById(OperatorId::kDalal),
                   RevisionStrategy::kDelayed, &vocabulary);
  kb.Revise(ParseOrDie("!a | !b", &vocabulary));
  const Alphabet alphabet = kb.CurrentAlphabet();
  const ModelSet models = kb.Models();
  for (uint64_t v = 0; v < (uint64_t{1} << alphabet.size()); ++v) {
    const Interpretation m = Interpretation::FromIndex(alphabet.size(), v);
    EXPECT_EQ(models.Contains(m), kb.IsModel(m, alphabet));
  }
}

TEST(KnowledgeBaseTest, StoredSizeReflectsStrategy) {
  // On Nebel's explosion family, explicit storage under GFUV blows up
  // while delayed storage stays linear.
  Vocabulary vocabulary;
  Theory t;
  std::vector<Formula> xors;
  for (int i = 0; i < 4; ++i) {
    const Formula x =
        Formula::Variable(vocabulary.Intern("sx" + std::to_string(i)));
    const Formula y =
        Formula::Variable(vocabulary.Intern("sy" + std::to_string(i)));
    t.Add(x);
    t.Add(y);
    xors.push_back(Formula::Xor(x, y));
  }
  const Formula p = ConjoinAll(xors);
  KnowledgeBase delayed(t, OperatorById(OperatorId::kGfuv),
                        RevisionStrategy::kDelayed, &vocabulary);
  KnowledgeBase explicit_kb(t, OperatorById(OperatorId::kGfuv),
                            RevisionStrategy::kExplicit, &vocabulary);
  delayed.Revise(p);
  explicit_kb.Revise(p);
  EXPECT_EQ(t.VarOccurrences() + p.VarOccurrences(), delayed.StoredSize());
  // 2^4 worlds of 4+ letters each, plus P.
  EXPECT_GT(explicit_kb.StoredSize(), delayed.StoredSize());
  EXPECT_GE(explicit_kb.StoredSize(), 16u * 4u);
}

TEST(KnowledgeBaseTest, CompactStaysPolynomialWhereExplicitExplodes) {
  // Dalal over a chain of forced contradictions: the explicit canonical
  // DNF can be large; the compact Phi grows linearly per step.
  Vocabulary vocabulary;
  std::vector<Formula> letters;
  for (int i = 0; i < 6; ++i) {
    letters.push_back(
        Formula::Variable(vocabulary.Intern("c" + std::to_string(i))));
  }
  const Theory t({ConjoinAll(letters)});
  KnowledgeBase compact(t, OperatorById(OperatorId::kDalal),
                        RevisionStrategy::kCompact, &vocabulary);
  uint64_t previous = compact.StoredSize();
  uint64_t max_increment = 0;
  for (int step = 0; step < 5; ++step) {
    compact.Revise(Formula::Not(letters[step]));
    const uint64_t size = compact.StoredSize();
    max_increment = std::max(max_increment, size - previous);
    previous = size;
  }
  // Linear growth: bounded per-step increment (generous constant).
  EXPECT_LE(max_increment, 600u);
}

TEST(TheoryIoTest, TextRoundTrip) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie(
      "a & b; a -> (c | !d); x1 ^ y1", &vocabulary);
  const std::string text = TheoryToText(t, vocabulary);
  StatusOr<Theory> parsed = TheoryFromText(text, &vocabulary);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(t.size(), parsed->size());
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_TRUE(t[i].StructurallyEqual((*parsed)[i]));
  }
}

TEST(TheoryIoTest, CommentsAndBlankLines) {
  Vocabulary vocabulary;
  StatusOr<Theory> parsed = TheoryFromText(
      "# header\n\na & b  # trailing comment\n\n!c\n", &vocabulary);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(2u, parsed->size());
}

TEST(TheoryIoTest, ReportsLineNumbersOnErrors) {
  Vocabulary vocabulary;
  StatusOr<Theory> parsed =
      TheoryFromText("a\nb &\nc", &vocabulary);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(std::string::npos, parsed.status().message().find("line 2"));
}

TEST(TheoryIoTest, FileRoundTrip) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("p -> q; !q", &vocabulary);
  const std::string path = ::testing::TempDir() + "/revise_io_test.thy";
  ASSERT_TRUE(SaveTheoryToFile(t, vocabulary, path).ok());
  StatusOr<Theory> loaded = LoadTheoryFromFile(path, &vocabulary);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(t.size(), loaded->size());
  EXPECT_FALSE(LoadTheoryFromFile("/nonexistent/x.thy", &vocabulary).ok());
}

TEST(TheoryIoTest, SaveReportsFullDiskInsteadOfOk) {
  // Regression: SaveTheoryToFile once checked out.good() *before*
  // flushing, so a failing flush (ENOSPC) still returned Ok and the
  // caller believed its theory was durable.  /dev/full fails every
  // flush, which is exactly the constrained path.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("p -> q; !q", &vocabulary);
  const Status status = SaveTheoryToFile(t, vocabulary, "/dev/full");
  ASSERT_FALSE(status.ok()) << "a write to a full disk reported success";
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("short write"), std::string::npos);
}

TEST(AdviceOracleTest, DecidesSampled3SatInstancesCorrectly) {
  Vocabulary vocabulary;
  const AdviceOracle oracle(3, &vocabulary);
  EXPECT_GT(oracle.AdviceSize(), 0u);
  Rng rng(4242);
  for (int trial = 0; trial < 15; ++trial) {
    const auto pi = oracle.tau().RandomInstance(
        1 + rng.Below(oracle.tau().num_clauses()), &rng);
    EXPECT_EQ(IsSatisfiable(oracle.tau().InstanceFormula(pi)),
              oracle.IsSatisfiable(pi))
        << "instance size " << pi.size();
  }
  // The empty instance is satisfiable; the full tau_max is not.
  EXPECT_TRUE(oracle.IsSatisfiable({}));
  std::vector<size_t> all(oracle.tau().num_clauses());
  for (size_t j = 0; j < all.size(); ++j) all[j] = j;
  EXPECT_FALSE(oracle.IsSatisfiable(all));
}

// Repeating the same revision is idempotent for the KM revision
// operators: T * P |= P, so (T * P) & P is consistent and R2 collapses
// the second step.
TEST(IteratedPropertyTest, RepeatedRevisionIsIdempotent) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(vocabulary.Intern("ip" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(31337);
  for (int trial = 0; trial < 10; ++trial) {
    Formula t = RandomFormula(vars, 3, &rng);
    Formula p = RandomFormula(vars, 3, &rng);
    if (!BruteForceSat(t, alphabet) || !BruteForceSat(p, alphabet)) {
      continue;
    }
    for (const OperatorId id :
         {OperatorId::kBorgida, OperatorId::kSatoh, OperatorId::kDalal,
          OperatorId::kWeber, OperatorId::kWinslett, OperatorId::kForbus,
          OperatorId::kWidtio}) {
      const RevisionOperator* op = OperatorById(id);
      const ModelSet once = IteratedReviseModels(*op, Theory({t}), {p},
                                                 alphabet);
      const ModelSet twice = IteratedReviseModels(*op, Theory({t}),
                                                  {p, p}, alphabet);
      EXPECT_EQ(once, twice) << op->name();
    }
  }
}

// Nebel's operator with three priority classes: lower classes only ever
// give way to higher ones.
TEST(NebelPriorityTest, ThreeClassScenario) {
  Vocabulary vocabulary;
  const Formula law = ParseOrDie("!(speeding & legal)", &vocabulary);
  const Formula witness1 = ParseOrDie("speeding", &vocabulary);
  const Formula witness2 = ParseOrDie("legal", &vocabulary);
  const Formula rumor = ParseOrDie("!speeding & !legal", &vocabulary);
  // law > witnesses > rumor; revise with "speeding & legal is impossible
  // but at least one holds".
  const Formula p = ParseOrDie("speeding | legal", &vocabulary);
  const std::vector<Theory> classes = {Theory({law}),
                                       Theory({witness1, witness2}),
                                       Theory({rumor})};
  const auto worlds = PrioritizedMaximalSubsets(classes, p);
  // The law survives in every world; the rumor never does (it conflicts
  // with p given the law... actually with p directly).
  for (const uint64_t mask : worlds) {
    EXPECT_TRUE(mask & 0b0001) << "law dropped in a world";
    EXPECT_FALSE(mask & 0b1000) << "rumor survived";
  }
  // The two witnesses conflict (given the law): each world keeps exactly
  // one of them.
  for (const uint64_t mask : worlds) {
    const int witness_count =
        ((mask >> 1) & 1) + ((mask >> 2) & 1);
    EXPECT_EQ(1, witness_count);
  }
  EXPECT_EQ(2u, worlds.size());
}

}  // namespace
}  // namespace revise
