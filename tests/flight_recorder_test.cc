// Tests for the crash flight recorder (obs/flight_recorder.h): the
// bounded ring overwrites oldest-first and counts drops, FlightOpScope
// brackets operations, the JSON dump parses, WriteCrashDump lands in
// REVISE_CRASH_DIR, and — the crash path itself — a failed REVISE_CHECK
// dumps the recorded events to stderr before aborting.

#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/check.h"

namespace revise::obs {
namespace {

std::vector<std::string> EventNames() {
  std::vector<std::string> names;
  for (const FlightEvent& event : SnapshotFlightEvents()) {
    names.emplace_back(event.name);
  }
  return names;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { ClearFlightEvents(); }
  void TearDown() override {
    SetFlightRecorderCapacity(kDefaultFlightRecorderCapacity);
  }
};

TEST_F(FlightRecorderTest, RingOverwritesOldestFirstAndCountsDrops) {
  SetFlightRecorderCapacity(4);
  EXPECT_EQ(FlightRecorderCapacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    RecordFlightEvent("test.evt_" + std::to_string(i), "detail");
  }
  const std::vector<std::string> names = EventNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "test.evt_2");
  EXPECT_EQ(names[1], "test.evt_3");
  EXPECT_EQ(names[2], "test.evt_4");
  EXPECT_EQ(names[3], "test.evt_5");
  EXPECT_EQ(FlightEventsDropped(), 2u);
  ClearFlightEvents();
  EXPECT_TRUE(SnapshotFlightEvents().empty());
  EXPECT_EQ(FlightEventsDropped(), 0u);
}

// Regression: the crash dump writers used to read the events and the
// dropped counter under two separate lock acquisitions, so a concurrent
// recorder could pair a ring snapshot with a dropped count from a
// different instant.  SnapshotFlightRecorder returns both under one
// acquisition; this pins the pair's consistency on a single thread.
TEST_F(FlightRecorderTest, SnapshotReturnsEventsAndDropsFromOneInstant) {
  SetFlightRecorderCapacity(4);
  for (int i = 0; i < 6; ++i) {
    RecordFlightEvent("test.snap_" + std::to_string(i), "detail");
  }
  const FlightRecorderStats stats = SnapshotFlightRecorder();
  ASSERT_EQ(stats.events.size(), 4u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_STREQ(stats.events.front().name, "test.snap_2");
  EXPECT_STREQ(stats.events.back().name, "test.snap_5");
  // The pair matches what the separate accessors report once recording
  // has stopped.
  EXPECT_EQ(stats.events.size(), SnapshotFlightEvents().size());
  EXPECT_EQ(stats.dropped, FlightEventsDropped());
}

TEST_F(FlightRecorderTest, LongNamesAndDetailsTruncateSafely) {
  const std::string long_name(200, 'n');
  const std::string long_detail(400, 'd');
  RecordFlightEvent(long_name, long_detail);
  const auto events = SnapshotFlightEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), std::string(47, 'n'));
  EXPECT_EQ(std::string(events[0].detail), std::string(79, 'd'));
}

TEST_F(FlightRecorderTest, OpScopeEmitsBeginAndEndEvents) {
  {
    FlightOpScope scope("Winslett");
    REVISE_FLIGHT_EVENT("test.inside_op", "between begin and end");
  }
  const auto events = SnapshotFlightEvents();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "revise.op_begin");
  EXPECT_STREQ(events[0].detail, "Winslett");
  EXPECT_STREQ(events[1].name, "test.inside_op");
  EXPECT_STREQ(events[2].name, "revise.op_end");
  EXPECT_STREQ(events[2].detail, "Winslett");
  EXPECT_GE(events[2].t_ns, events[0].t_ns);
}

TEST_F(FlightRecorderTest, JsonDumpParsesWithReasonAndEvents) {
  SetFlightRecorderCapacity(2);
  for (int i = 0; i < 3; ++i) {
    RecordFlightEvent("test.json_evt", "i=" + std::to_string(i));
  }
  StatusOr<Json> parsed = Json::Parse(FlightRecorderJson("unit test"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* recorder = parsed->Find("flight_recorder");
  ASSERT_NE(recorder, nullptr);
  EXPECT_EQ(recorder->Find("reason")->AsString(), "unit test");
  EXPECT_GT(recorder->Find("pid")->AsUint(), 0u);
  EXPECT_EQ(recorder->Find("dropped")->AsUint(), 1u);
  const Json* events = recorder->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ(events->at(0).Find("name")->AsString(), "test.json_evt");
  EXPECT_EQ(events->at(1).Find("detail")->AsString(), "i=2");
  EXPECT_TRUE(events->at(0).Has("t_ns"));
  EXPECT_TRUE(events->at(0).Has("tid"));
}

TEST_F(FlightRecorderTest, CrashDumpWritesToCrashDir) {
  ASSERT_EQ(setenv("REVISE_CRASH_DIR", ::testing::TempDir().c_str(), 1), 0);
  REVISE_FLIGHT_EVENT("test.crash_dump", "dump target check");
  const std::string path = WriteCrashDump("unit test dump");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find(::testing::TempDir()), std::string::npos);
  EXPECT_NE(path.find("crash_"), std::string::npos);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  StatusOr<Json> parsed = Json::Parse(contents);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* recorder = parsed->Find("flight_recorder");
  ASSERT_NE(recorder, nullptr);
  EXPECT_EQ(recorder->Find("reason")->AsString(), "unit test dump");
  unsetenv("REVISE_CRASH_DIR");
}

TEST_F(FlightRecorderTest, DumpBracketsEventsWithMarkers) {
  REVISE_FLIGHT_EVENT("test.dump_marker", "stderr dump");
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  DumpFlightRecorder(sink, "marker check");
  std::rewind(sink);
  std::string contents;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), sink)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(sink);
  EXPECT_NE(contents.find("=== revise flight recorder (reason: marker check)"),
            std::string::npos);
  EXPECT_NE(contents.find("test.dump_marker"), std::string::npos);
  EXPECT_NE(contents.find("=== end flight recorder"), std::string::npos);
}

// The crash path: a failed REVISE_CHECK invokes the installed hook,
// which dumps the ring (with the events recorded before the crash) to
// stderr before aborting.  REVISE_CRASH_DIR keeps the child's
// crash_<pid>.json out of the working directory.
TEST(FlightRecorderDeathTest, CheckFailureDumpsTheRecorder) {
  ASSERT_EQ(setenv("REVISE_CRASH_DIR", ::testing::TempDir().c_str(), 1), 0);
  REVISE_FLIGHT_EVENT("test.before_crash", "recorded before the check");
  EXPECT_DEATH(REVISE_CHECK(1 == 2), "revise flight recorder");
  EXPECT_DEATH(REVISE_CHECK(1 == 2), "test.before_crash");
  unsetenv("REVISE_CRASH_DIR");
}

}  // namespace
}  // namespace revise::obs
