#include <gtest/gtest.h>

#include "hardness/random_instances.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "minimize/horn.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace revise {
namespace {

using ::revise::testing::BruteForceModels;
using ::revise::testing::BruteForceSat;

TEST(HornShapeTest, ClauseRecognition) {
  Vocabulary vocabulary;
  EXPECT_TRUE(IsHornClause(ParseOrDie("!a | !b | c", &vocabulary)));
  EXPECT_TRUE(IsHornClause(ParseOrDie("!a | !b", &vocabulary)));
  EXPECT_TRUE(IsHornClause(ParseOrDie("c", &vocabulary)));
  EXPECT_TRUE(IsHornClause(Formula::True()));
  EXPECT_FALSE(IsHornClause(ParseOrDie("a | b", &vocabulary)));
  EXPECT_FALSE(IsHornClause(ParseOrDie("a & b", &vocabulary)));
}

TEST(HornShapeTest, FormulaRecognition) {
  Vocabulary vocabulary;
  EXPECT_TRUE(
      IsHornFormula(ParseOrDie("(!a | b) & (!b | !c) & a", &vocabulary)));
  EXPECT_FALSE(IsHornFormula(ParseOrDie("(a | b) & !c", &vocabulary)));
}

TEST(IntersectionClosureTest, AddsMeets) {
  // Models {a}, {b}: closure adds {}.
  const Alphabet alphabet({0, 1});
  const ModelSet models(alphabet, {Interpretation::FromIndex(2, 0b01),
                                   Interpretation::FromIndex(2, 0b10)});
  const ModelSet closed = IntersectionClosure(models);
  EXPECT_EQ(3u, closed.size());
  EXPECT_TRUE(closed.Contains(Interpretation::FromIndex(2, 0)));
}

TEST(IntersectionClosureTest, HornSetIsAlreadyClosed) {
  Vocabulary vocabulary;
  const Formula horn =
      ParseOrDie("(!a | b) & (!b | !c | a)", &vocabulary);
  const Alphabet alphabet(horn.Vars());
  const ModelSet models = BruteForceModels(horn, alphabet);
  EXPECT_EQ(models, IntersectionClosure(models));
}

class HornLubTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      vars_.push_back(vocabulary_.Intern("h" + std::to_string(i)));
    }
    alphabet_ = Alphabet(vars_);
  }

  Vocabulary vocabulary_;
  std::vector<Var> vars_;
  Alphabet alphabet_;
};

TEST_P(HornLubTest, LubModelsAreTheIntersectionClosure) {
  // Dechter-Pearl / Selman-Kautz: M(HornLub(phi)) == closure(M(phi)).
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const Formula f = RandomFormula(vars_, 4, &rng);
    const ModelSet models = BruteForceModels(f, alphabet_);
    if (models.empty()) continue;
    const Formula lub = HornLub(models);
    EXPECT_TRUE(IsHornFormula(lub)) << ToString(lub, vocabulary_);
    EXPECT_EQ(IntersectionClosure(models),
              BruteForceModels(lub, alphabet_))
        << ToString(f, vocabulary_);
    // phi |= LUB (the LUB is an UPPER bound).
    EXPECT_TRUE(Entails(f, lub));
  }
}

TEST_P(HornLubTest, SoundApproximateQueryAnswering) {
  // If the Horn LUB of the revised base entails Q, so does the revised
  // base (Section 2.3's approximate compilation, applied to revision).
  Rng rng(GetParam() + 50);
  const DalalOperator dalal;
  for (int trial = 0; trial < 8; ++trial) {
    Formula t = RandomFormula(vars_, 3, &rng);
    Formula p = RandomFormula(vars_, 3, &rng);
    if (!BruteForceSat(t, alphabet_) || !BruteForceSat(p, alphabet_)) {
      continue;
    }
    const ModelSet revised = dalal.ReviseModels(Theory({t}), p, alphabet_);
    const Formula lub = HornLub(revised);
    const Formula revised_formula = dalal.ReviseFormula(Theory({t}), p);
    for (int q = 0; q < 6; ++q) {
      const Formula query = RandomFormula(vars_, 3, &rng);
      if (Entails(lub, query)) {
        EXPECT_TRUE(Entails(revised_formula, query))
            << "unsound LUB answer on " << ToString(query, vocabulary_);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HornLubTest, ::testing::Range(950, 954));

TEST(HornLubTest2, ExactForHornInput) {
  // The LUB of a Horn theory is the theory itself (up to equivalence).
  Vocabulary vocabulary;
  const Formula horn =
      ParseOrDie("(!a | b) & (!b | c) & (!c | !d)", &vocabulary);
  const Alphabet alphabet(horn.Vars());
  const Formula lub = HornLub(BruteForceModels(horn, alphabet));
  EXPECT_TRUE(AreEquivalent(horn, lub));
}

TEST(HornLubTest2, StrictlyWeakerForNonHornInput) {
  // a | b is not Horn-expressible: the LUB must be strictly weaker.
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("a | b", &vocabulary);
  const Alphabet alphabet(f.Vars());
  const Formula lub = HornLub(BruteForceModels(f, alphabet));
  EXPECT_TRUE(Entails(f, lub));
  EXPECT_FALSE(Entails(lub, f));
  // In fact the LUB of a|b is the empty (true) theory.
  EXPECT_TRUE(AreEquivalent(lub, Formula::True()));
}

}  // namespace
}  // namespace revise
