#include <gtest/gtest.h>

#include "hardness/random_instances.h"
#include "logic/evaluate.h"
#include "logic/formula.h"
#include "logic/interpretation.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/substitute.h"
#include "logic/theory.h"
#include "logic/transform.h"
#include "logic/vocabulary.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace revise {
namespace {

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary vocabulary;
  const Var a = vocabulary.Intern("a");
  const Var b = vocabulary.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, vocabulary.Intern("a"));
  EXPECT_EQ("a", vocabulary.Name(a));
  EXPECT_EQ("b", vocabulary.Name(b));
}

TEST(VocabularyTest, FindMissingReturnsInvalid) {
  Vocabulary vocabulary;
  EXPECT_EQ(kInvalidVar, vocabulary.Find("missing"));
  vocabulary.Intern("present");
  EXPECT_NE(kInvalidVar, vocabulary.Find("present"));
}

TEST(VocabularyTest, FreshNamesAreDistinct) {
  Vocabulary vocabulary;
  const Var w0 = vocabulary.Fresh("w");
  const Var w1 = vocabulary.Fresh("w");
  EXPECT_NE(w0, w1);
  EXPECT_NE(vocabulary.Name(w0), vocabulary.Name(w1));
}

TEST(VocabularyTest, FreshBlockMintsCount) {
  Vocabulary vocabulary;
  const std::vector<Var> block = vocabulary.FreshBlock("y", 5);
  EXPECT_EQ(5u, block.size());
  for (size_t i = 0; i < block.size(); ++i) {
    for (size_t j = i + 1; j < block.size(); ++j) {
      EXPECT_NE(block[i], block[j]);
    }
  }
}

TEST(FormulaTest, ConstantsFold) {
  EXPECT_TRUE(Formula::And(Formula::True(), Formula::True()).IsTrue());
  EXPECT_TRUE(Formula::And(Formula::True(), Formula::False()).IsFalse());
  EXPECT_TRUE(Formula::Or(Formula::False(), Formula::False()).IsFalse());
  EXPECT_TRUE(Formula::Or(Formula::True(), Formula::False()).IsTrue());
  EXPECT_TRUE(Formula::Not(Formula::True()).IsFalse());
  EXPECT_TRUE(Formula::Implies(Formula::False(), Formula::False()).IsTrue());
}

TEST(FormulaTest, DoubleNegationCancels) {
  Vocabulary vocabulary;
  const Formula a = Formula::Variable(vocabulary.Intern("a"));
  EXPECT_TRUE(Formula::Not(Formula::Not(a)).StructurallyEqual(a));
}

TEST(FormulaTest, AndFlattens) {
  Vocabulary vocabulary;
  const Formula a = Formula::Variable(vocabulary.Intern("a"));
  const Formula b = Formula::Variable(vocabulary.Intern("b"));
  const Formula c = Formula::Variable(vocabulary.Intern("c"));
  const Formula nested = Formula::And(Formula::And(a, b), c);
  EXPECT_EQ(Connective::kAnd, nested.kind());
  EXPECT_EQ(3u, nested.arity());
}

TEST(FormulaTest, VarOccurrencesMatchesPaperSizeMeasure) {
  Vocabulary vocabulary;
  // x1 & (x2 | !x3) has 3 occurrences; (a | a) & a has 3.
  const Formula f = ParseOrDie("x1 & (x2 | !x3)", &vocabulary);
  EXPECT_EQ(3u, f.VarOccurrences());
  const Formula g = ParseOrDie("(a | a) & a", &vocabulary);
  EXPECT_EQ(3u, g.VarOccurrences());
}

TEST(FormulaTest, VarsAreSortedAndDistinct) {
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("c & a & b & a", &vocabulary);
  const std::vector<Var> vars = f.Vars();
  EXPECT_EQ(3u, vars.size());
  EXPECT_TRUE(std::is_sorted(vars.begin(), vars.end()));
}

TEST(FormulaTest, DefaultFormulaIsTrue) {
  Formula f;
  EXPECT_TRUE(f.IsTrue());
}

TEST(ParserTest, RejectsBadSyntax) {
  Vocabulary vocabulary;
  EXPECT_FALSE(Parse("a &", &vocabulary).ok());
  EXPECT_FALSE(Parse("(a", &vocabulary).ok());
  EXPECT_FALSE(Parse("a b", &vocabulary).ok());
  EXPECT_FALSE(Parse("", &vocabulary).ok());
  EXPECT_FALSE(Parse("a @ b", &vocabulary).ok());
  EXPECT_FALSE(Parse("a <- b", &vocabulary).ok());
}

TEST(ParserTest, PrecedenceNotBindsTightest) {
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("!a & b", &vocabulary);
  EXPECT_EQ(Connective::kAnd, f.kind());
}

TEST(ParserTest, PrecedenceAndOverOr) {
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("a | b & c", &vocabulary);
  EXPECT_EQ(Connective::kOr, f.kind());
}

TEST(ParserTest, ImpliesIsRightAssociative) {
  Vocabulary vocabulary;
  // a -> b -> c  ==  a -> (b -> c).
  const Formula f = ParseOrDie("a -> b -> c", &vocabulary);
  const Formula g = ParseOrDie("a -> (b -> c)", &vocabulary);
  EXPECT_TRUE(f.StructurallyEqual(g));
}

TEST(ParserTest, AcceptsNestingUpToTheDepthLimit) {
  Vocabulary vocabulary;
  const std::string deep = std::string(kMaxParseDepth, '(') + "a" +
                           std::string(kMaxParseDepth, ')');
  const StatusOr<Formula> f = Parse(deep, &vocabulary);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(Connective::kVar, f.value().kind());
}

TEST(ParserTest, RejectsNestingOneBeyondTheDepthLimit) {
  Vocabulary vocabulary;
  const std::string deep = std::string(kMaxParseDepth + 1, '(') + "a" +
                           std::string(kMaxParseDepth + 1, ')');
  const StatusOr<Formula> f = Parse(deep, &vocabulary);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(StatusCode::kResourceExhausted, f.status().code());
}

TEST(ParserTest, DeeplyNestedInputReturnsStatusInsteadOfCrashing) {
  // Regression for the fuzzer's first finding: 100k nested parentheses,
  // negations, or right-recursive implications used to overflow the
  // parser stack.  All three recursion points must hit the guard.
  Vocabulary vocabulary;
  constexpr int kDeep = 100000;
  const std::string parens =
      std::string(kDeep, '(') + "a" + std::string(kDeep, ')');
  EXPECT_EQ(StatusCode::kResourceExhausted,
            Parse(parens, &vocabulary).status().code());
  const std::string nots = std::string(kDeep, '!') + "a";
  EXPECT_EQ(StatusCode::kResourceExhausted,
            Parse(nots, &vocabulary).status().code());
  std::string implies = "a";
  for (int i = 0; i < kDeep; ++i) implies += " -> a";
  EXPECT_EQ(StatusCode::kResourceExhausted,
            Parse(implies, &vocabulary).status().code());
}

TEST(ParserTest, DepthLimitCountsNestingNotLength) {
  // Long but flat input (a & a & ...) must stay accepted: '&' chains
  // iterate, so breadth is unaffected by the depth guard.
  Vocabulary vocabulary;
  std::string flat = "a";
  for (int i = 0; i < 10000; ++i) flat += " & a";
  EXPECT_TRUE(Parse(flat, &vocabulary).ok());
}

TEST(ParserTest, AcceptsTildeForNegation) {
  Vocabulary vocabulary;
  EXPECT_TRUE(ParseOrDie("~a", &vocabulary)
                  .StructurallyEqual(ParseOrDie("!a", &vocabulary)));
}

TEST(PrinterTest, RoundTripPreservesStructureOnRandomFormulas) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (const char* name : {"a", "b", "c", "d"}) {
    vars.push_back(vocabulary.Intern(name));
  }
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const Formula f = RandomFormula(vars, 4, &rng);
    const Formula g = ParseOrDie(ToString(f, vocabulary), &vocabulary);
    EXPECT_TRUE(f.StructurallyEqual(g))
        << ToString(f, vocabulary) << " vs " << ToString(g, vocabulary);
  }
}

TEST(EvaluateTest, BasicConnectives) {
  Vocabulary vocabulary;
  const Var a = vocabulary.Intern("a");
  const Var b = vocabulary.Intern("b");
  const Alphabet alphabet({a, b});
  const Formula f = ParseOrDie("a ^ b", &vocabulary);
  for (uint64_t index = 0; index < 4; ++index) {
    const Interpretation m = Interpretation::FromIndex(2, index);
    EXPECT_EQ(m.Get(0) != m.Get(1), Evaluate(f, alphabet, m));
  }
}

TEST(EvaluateTest, VariablesOutsideAlphabetAreFalse) {
  Vocabulary vocabulary;
  const Var a = vocabulary.Intern("a");
  const Var b = vocabulary.Intern("b");
  const Alphabet alphabet({a});
  const Formula f = Formula::Or(Formula::Variable(a), Formula::Variable(b));
  Interpretation m(1);
  EXPECT_FALSE(Evaluate(f, alphabet, m));
  m.Set(0, true);
  EXPECT_TRUE(Evaluate(f, alphabet, m));
}

TEST(SubstituteTest, SimultaneousSwap) {
  Vocabulary vocabulary;
  const Var x = vocabulary.Intern("x");
  const Var y = vocabulary.Intern("y");
  // Swapping x and y in (x & !y) must give (y & !x), not (y & !y).
  const Formula f = ParseOrDie("x & !y", &vocabulary);
  std::unordered_map<Var, Formula> map;
  map.emplace(x, Formula::Variable(y));
  map.emplace(y, Formula::Variable(x));
  const Formula g = Substitute(f, map);
  EXPECT_TRUE(g.StructurallyEqual(ParseOrDie("y & !x", &vocabulary)));
}

TEST(SubstituteTest, PaperExample) {
  // Q = x1 & (x2 | !x3), Q[{x1,x3}/{y1,!y3}] = y1 & (x2 | !!y3).
  Vocabulary vocabulary;
  const Formula q = ParseOrDie("x1 & (x2 | !x3)", &vocabulary);
  std::unordered_map<Var, Formula> map;
  map.emplace(vocabulary.Intern("x1"),
              Formula::Variable(vocabulary.Intern("y1")));
  map.emplace(vocabulary.Intern("x3"),
              Formula::Not(Formula::Variable(vocabulary.Intern("y3"))));
  const Formula result = Substitute(q, map);
  // Our factories cancel the double negation: y1 & (x2 | y3).
  EXPECT_TRUE(result.StructurallyEqual(ParseOrDie("y1 & (x2 | y3)",
                                                  &vocabulary)));
}

TEST(SubstituteTest, FlipVarsMatchesProposition42) {
  // Proposition 4.2: M |= F iff (M delta H) |= F[H/!H].
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (const char* name : {"p", "q", "r"}) {
    vars.push_back(vocabulary.Intern(name));
  }
  const Alphabet alphabet(vars);
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const Formula f = RandomFormula(vars, 3, &rng);
    const uint64_t h_mask = rng.Below(8);
    std::vector<Var> h;
    for (size_t i = 0; i < 3; ++i) {
      if ((h_mask >> i) & 1) h.push_back(vars[i]);
    }
    const Formula flipped = FlipVars(f, h);
    const Interpretation h_set = Interpretation::FromIndex(3, h_mask);
    for (uint64_t index = 0; index < 8; ++index) {
      const Interpretation m = Interpretation::FromIndex(3, index);
      const Interpretation m_delta_h = m.SymmetricDifference(h_set);
      EXPECT_EQ(Evaluate(f, alphabet, m),
                Evaluate(flipped, alphabet, m_delta_h));
    }
  }
}

TEST(TransformTest, NnfPreservesSemantics) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (const char* name : {"a", "b", "c", "d"}) {
    vars.push_back(vocabulary.Intern(name));
  }
  const Alphabet alphabet(vars);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const Formula f = RandomFormula(vars, 4, &rng);
    const Formula nnf = ToNnf(f);
    for (uint64_t index = 0; index < 16; ++index) {
      const Interpretation m = Interpretation::FromIndex(4, index);
      ASSERT_EQ(Evaluate(f, alphabet, m), Evaluate(nnf, alphabet, m));
    }
  }
}

TEST(TransformTest, NnfHasOnlyLiteralsAndAndOr) {
  Vocabulary vocabulary;
  std::vector<Var> vars = {vocabulary.Intern("a"), vocabulary.Intern("b")};
  Rng rng(5);
  std::function<void(const Formula&)> check = [&](const Formula& f) {
    switch (f.kind()) {
      case Connective::kConst:
      case Connective::kVar:
        return;
      case Connective::kNot:
        EXPECT_EQ(Connective::kVar, f.child(0).kind());
        return;
      case Connective::kAnd:
      case Connective::kOr:
        for (size_t i = 0; i < f.arity(); ++i) check(f.child(i));
        return;
      default:
        FAIL() << "unexpected connective in NNF";
    }
  };
  for (int trial = 0; trial < 50; ++trial) {
    check(ToNnf(RandomFormula(vars, 4, &rng)));
  }
}

TEST(TransformTest, EliminateDerivedPreservesSemantics) {
  Vocabulary vocabulary;
  std::vector<Var> vars = {vocabulary.Intern("a"), vocabulary.Intern("b"),
                           vocabulary.Intern("c")};
  const Alphabet alphabet(vars);
  Rng rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    const Formula f = RandomFormula(vars, 4, &rng);
    const Formula g = EliminateDerivedConnectives(f);
    for (uint64_t index = 0; index < 8; ++index) {
      const Interpretation m = Interpretation::FromIndex(3, index);
      ASSERT_EQ(Evaluate(f, alphabet, m), Evaluate(g, alphabet, m));
    }
  }
}

TEST(TransformTest, RestrictFixesVariable) {
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("a & (b | c)", &vocabulary);
  const Formula g = Restrict(f, vocabulary.Find("a"), true);
  EXPECT_TRUE(g.StructurallyEqual(ParseOrDie("b | c", &vocabulary)));
  const Formula h = Restrict(f, vocabulary.Find("a"), false);
  EXPECT_TRUE(h.IsFalse());
}

TEST(InterpretationTest, SymmetricDifferenceAndDistance) {
  Interpretation a = Interpretation::FromIndex(5, 0b10110);
  Interpretation b = Interpretation::FromIndex(5, 0b01100);
  const Interpretation d = a.SymmetricDifference(b);
  EXPECT_EQ(0b11010u, d.ToIndex());
  EXPECT_EQ(3u, a.HammingDistance(b));
  EXPECT_EQ(3u, d.Cardinality());
}

TEST(InterpretationTest, SubsetChecks) {
  const Interpretation small = Interpretation::FromIndex(4, 0b0010);
  const Interpretation big = Interpretation::FromIndex(4, 0b1010);
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_TRUE(small.IsProperSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(big.IsSubsetOf(big));
  EXPECT_FALSE(big.IsProperSubsetOf(big));
}

TEST(InterpretationTest, SetAlgebra) {
  const Interpretation a = Interpretation::FromIndex(4, 0b1100);
  const Interpretation b = Interpretation::FromIndex(4, 0b1010);
  EXPECT_EQ(0b1110u, a.Union(b).ToIndex());
  EXPECT_EQ(0b1000u, a.Intersection(b).ToIndex());
  EXPECT_EQ(0b0100u, a.Minus(b).ToIndex());
}

TEST(InterpretationTest, WideInterpretations) {
  // Exercise the multi-word path (> 64 letters).
  Interpretation a(130);
  Interpretation b(130);
  a.Set(0, true);
  a.Set(70, true);
  a.Set(129, true);
  b.Set(70, true);
  EXPECT_EQ(3u, a.Cardinality());
  EXPECT_EQ(2u, a.HammingDistance(b));
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(InterpretationTest, ToStringNamesTrueLetters) {
  Vocabulary vocabulary;
  const Var a = vocabulary.Intern("a");
  const Var b = vocabulary.Intern("b");
  const Alphabet alphabet({a, b});
  Interpretation m(2);
  m.Set(1, true);
  EXPECT_EQ("{b}", m.ToString(alphabet, vocabulary));
}

TEST(AlphabetTest, SortsAndDeduplicates) {
  const Alphabet alphabet({5, 3, 5, 1});
  EXPECT_EQ(3u, alphabet.size());
  EXPECT_EQ(1u, alphabet.var(0));
  EXPECT_EQ(3u, alphabet.var(1));
  EXPECT_EQ(5u, alphabet.var(2));
  EXPECT_EQ(1u, *alphabet.IndexOf(3));
  EXPECT_FALSE(alphabet.IndexOf(2).has_value());
}

TEST(AlphabetTest, Union) {
  const Alphabet a({1, 3});
  const Alphabet b({2, 3});
  const Alphabet u = Alphabet::Union(a, b);
  EXPECT_EQ(3u, u.size());
}

TEST(ReinterpretTest, ProjectsAndExtends) {
  const Alphabet from({1, 2, 3});
  const Alphabet to({2, 3, 4});
  Interpretation m(3);
  m.Set(0, true);  // var 1
  m.Set(1, true);  // var 2
  const Interpretation r = Reinterpret(m, from, to);
  EXPECT_TRUE(r.Get(0));   // var 2 kept
  EXPECT_FALSE(r.Get(1));  // var 3 was false
  EXPECT_FALSE(r.Get(2));  // var 4 defaults to false
}

TEST(TheoryTest, ParseSemicolonSeparated) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a; b; a -> b;", &vocabulary);
  EXPECT_EQ(3u, t.size());
  EXPECT_EQ(2u, t.Vars().size());
}

TEST(TheoryTest, SubsetByMask) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a; b; c", &vocabulary);
  const Theory sub = t.Subset(0b101);
  EXPECT_EQ(2u, sub.size());
  EXPECT_TRUE(sub[0].StructurallyEqual(t[0]));
  EXPECT_TRUE(sub[1].StructurallyEqual(t[2]));
}

TEST(TheoryTest, AsFormulaOfEmptyTheoryIsTrue) {
  Theory t;
  EXPECT_TRUE(t.AsFormula().IsTrue());
}

TEST(TheoryTest, VarOccurrencesSumsElements) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a & b; c | a", &vocabulary);
  EXPECT_EQ(4u, t.VarOccurrences());
}

}  // namespace
}  // namespace revise
