// Tests for the packed bit-matrix kernel layer (src/kernel/).
//
// Every batch kernel is checked bit-for-bit against a naive
// Interpretation-loop reference, at 1, 2 and 8 threads, across ragged
// shapes: widths straddling the 64-bit word and 256-bit block boundaries
// (1, 7, 63, 64, 65, 127, 130 letters) and row counts that are not a
// multiple of the 32-row tile (33, 37, 40).  The kernels' contract is
// exact equality — including the order of returned indices and
// interpretations — so every comparison below is EXPECT_EQ, never a
// set-wise comparison.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "kernel/kernels.h"
#include "kernel/packed_matrix.h"
#include "logic/interpretation.h"
#include "model/model_set.h"
#include "util/parallel.h"
#include "util/random.h"

namespace revise::kernel {
namespace {

// Restores the default parallelism when a test scope ends.
class ScopedThreads {
 public:
  explicit ScopedThreads(size_t threads) {
    SetParallelThreadsOverride(threads);
  }
  ~ScopedThreads() { SetParallelThreadsOverride(0); }
};

// Unique, lexicographically sorted random interpretations — the shape
// model sets arrive in (ModelSet canonicalizes exactly this way).  Half
// the rows are fresh draws; the rest mutate an earlier row in a couple of
// positions so subset/minimality structure actually occurs.
std::vector<Interpretation> RandomModels(Rng* rng, size_t bits,
                                         size_t rows) {
  std::vector<Interpretation> models;
  while (models.size() < rows) {
    Interpretation m(bits);
    if (!models.empty() && rng->Chance(0.5)) {
      m = models[rng->Below(models.size())];
      for (int flips = 0; flips < 2 && bits > 0; ++flips) {
        const size_t b = rng->Below(bits);
        m.Set(b, !m.Get(b));
      }
    } else {
      for (size_t b = 0; b < bits; ++b) {
        if (rng->Chance(0.5)) m.Set(b, true);
      }
    }
    models.push_back(std::move(m));
    if (bits < 6 && models.size() > (size_t{1} << bits)) break;
  }
  std::sort(models.begin(), models.end());
  models.erase(std::unique(models.begin(), models.end()), models.end());
  return models;
}

PackedModelMatrix Pack(size_t bits, const std::vector<Interpretation>& m) {
  return PackedModelMatrix::FromModels(bits, m);
}

// ---- naive references, one Interpretation at a time ----------------------

size_t NaiveMinDistance(const std::vector<Interpretation>& a,
                        const std::vector<Interpretation>& b, size_t cap) {
  size_t best = cap;
  for (const Interpretation& m : a) {
    for (const Interpretation& n : b) {
      const size_t d = m.HammingDistance(n);
      if (d < best) best = d;
    }
  }
  return best;
}

std::vector<uint32_t> NaiveDistanceRow(const Interpretation& m,
                                       const std::vector<Interpretation>& b) {
  std::vector<uint32_t> out;
  for (const Interpretation& n : b) {
    out.push_back(static_cast<uint32_t>(m.HammingDistance(n)));
  }
  return out;
}

std::vector<uint32_t> NaiveSelectWithinDistance(
    const std::vector<Interpretation>& p,
    const std::vector<Interpretation>& t, size_t k) {
  std::vector<uint32_t> out;
  for (size_t j = 0; j < p.size(); ++j) {
    for (const Interpretation& m : t) {
      if (m.HammingDistance(p[j]) <= k) {
        out.push_back(static_cast<uint32_t>(j));
        break;
      }
    }
  }
  return out;
}

// Sort + dedup + quadratic proper-subset filter: the canonical
// (lexicographic) order MinimalUnderInclusion documents.
std::vector<Interpretation> NaiveMinimal(std::vector<Interpretation> sets) {
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<Interpretation> out;
  for (const Interpretation& candidate : sets) {
    bool dominated = false;
    for (const Interpretation& other : sets) {
      if (other.IsProperSubsetOf(candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(candidate);
  }
  return out;
}

std::vector<Interpretation> NaiveMaximal(std::vector<Interpretation> sets) {
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<Interpretation> out;
  for (const Interpretation& candidate : sets) {
    bool dominated = false;
    for (const Interpretation& other : sets) {
      if (candidate.IsProperSubsetOf(other)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(candidate);
  }
  return out;
}

std::vector<Interpretation> NaiveMinimalDiffs(
    const std::vector<Interpretation>& a,
    const std::vector<Interpretation>& b) {
  std::vector<Interpretation> diffs;
  for (const Interpretation& m : a) {
    for (const Interpretation& n : b) {
      diffs.push_back(m.SymmetricDifference(n));
    }
  }
  return NaiveMinimal(std::move(diffs));
}

std::vector<uint32_t> NaiveSelectWithDiffIn(
    const std::vector<Interpretation>& p,
    const std::vector<Interpretation>& t,
    const std::vector<Interpretation>& delta) {
  std::vector<uint32_t> out;
  for (size_t j = 0; j < p.size(); ++j) {
    for (const Interpretation& m : t) {
      const Interpretation d = m.SymmetricDifference(p[j]);
      if (std::find(delta.begin(), delta.end(), d) != delta.end()) {
        out.push_back(static_cast<uint32_t>(j));
        break;
      }
    }
  }
  return out;
}

std::vector<uint32_t> NaiveSelectWithinMask(
    const std::vector<Interpretation>& p,
    const std::vector<Interpretation>& t, const Interpretation& mask) {
  std::vector<uint32_t> out;
  for (size_t j = 0; j < p.size(); ++j) {
    for (const Interpretation& m : t) {
      if (m.SymmetricDifference(p[j]).IsSubsetOf(mask)) {
        out.push_back(static_cast<uint32_t>(j));
        break;
      }
    }
  }
  return out;
}

std::vector<uint32_t> NaivePointwiseMinimalDiffs(
    const std::vector<Interpretation>& t,
    const std::vector<Interpretation>& p) {
  std::vector<uint32_t> out;
  for (const Interpretation& m : t) {
    for (size_t j = 0; j < p.size(); ++j) {
      const Interpretation d = m.SymmetricDifference(p[j]);
      bool minimal = true;
      for (const Interpretation& n : p) {
        if (m.SymmetricDifference(n).IsProperSubsetOf(d)) {
          minimal = false;
          break;
        }
      }
      if (minimal) out.push_back(static_cast<uint32_t>(j));
    }
  }
  return out;
}

std::vector<uint32_t> NaivePointwiseMinDistance(
    const std::vector<Interpretation>& t,
    const std::vector<Interpretation>& p) {
  std::vector<uint32_t> out;
  for (const Interpretation& m : t) {
    size_t best = static_cast<size_t>(-1);
    for (const Interpretation& n : p) {
      best = std::min(best, m.HammingDistance(n));
    }
    for (size_t j = 0; j < p.size(); ++j) {
      if (m.HammingDistance(p[j]) == best) {
        out.push_back(static_cast<uint32_t>(j));
      }
    }
  }
  return out;
}

// ---- the matrix itself ---------------------------------------------------

TEST(PackedModelMatrix, RoundTripsRowsAndPadsWithZeros) {
  Rng rng(7);
  for (const size_t bits : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                            size_t{130}}) {
    const std::vector<Interpretation> models = RandomModels(&rng, bits, 33);
    const PackedModelMatrix matrix = Pack(bits, models);
    ASSERT_EQ(matrix.bits(), bits);
    ASSERT_EQ(matrix.rows(), models.size());
    ASSERT_EQ(matrix.row_stride() % 4, 0u);  // whole 256-bit blocks
    ASSERT_GE(matrix.row_stride(), matrix.words_used());
    for (size_t r = 0; r < matrix.rows(); ++r) {
      EXPECT_EQ(matrix.ToInterpretation(r), models[r]);
      // Padding words beyond words_used() must stay zero: the block
      // primitives read the full stride.
      for (size_t w = matrix.words_used(); w < matrix.row_stride(); ++w) {
        EXPECT_EQ(matrix.row(r)[w], 0u);
      }
    }
  }
}

TEST(PackedModelMatrix, ZeroBitsAndZeroRows) {
  const PackedModelMatrix empty(0, 0);
  EXPECT_EQ(empty.bits(), 0u);
  EXPECT_EQ(empty.rows(), 0u);
  const std::vector<Interpretation> one{Interpretation(0)};
  const PackedModelMatrix zero_wide = Pack(0, one);
  EXPECT_EQ(zero_wide.rows(), 1u);
  EXPECT_EQ(zero_wide.ToInterpretation(0), Interpretation(0));
}

// ---- batch kernels vs the naive reference --------------------------------

struct Shape {
  size_t bits;
  size_t rows_a;
  size_t rows_b;
};

// Widths straddle word and block boundaries; row counts are not tile
// multiples.
const Shape kShapes[] = {
    {1, 2, 2},    {7, 33, 37},  {63, 33, 21}, {64, 40, 33},
    {65, 37, 33}, {127, 12, 60}, {130, 33, 37},
};

const size_t kThreadCounts[] = {1, 2, 8};

TEST(PackedKernels, MinDistanceOfSetsMatchesScalar) {
  Rng rng(11);
  for (const Shape& shape : kShapes) {
    const std::vector<Interpretation> a =
        RandomModels(&rng, shape.bits, shape.rows_a);
    const std::vector<Interpretation> b =
        RandomModels(&rng, shape.bits, shape.rows_b);
    const PackedModelMatrix pa = Pack(shape.bits, a);
    const PackedModelMatrix pb = Pack(shape.bits, b);
    for (const size_t cap :
         {size_t{1}, size_t{3}, shape.bits + 1}) {
      const size_t want = NaiveMinDistance(a, b, cap);
      for (const size_t threads : kThreadCounts) {
        ScopedThreads scope(threads);
        EXPECT_EQ(MinDistanceOfSets(pa, pb, cap), want)
            << "bits=" << shape.bits << " cap=" << cap
            << " threads=" << threads;
      }
    }
  }
}

TEST(PackedKernels, DistanceRowMatchesScalar) {
  Rng rng(13);
  for (const Shape& shape : kShapes) {
    const std::vector<Interpretation> a =
        RandomModels(&rng, shape.bits, shape.rows_a);
    const std::vector<Interpretation> b =
        RandomModels(&rng, shape.bits, shape.rows_b);
    const PackedModelMatrix pa = Pack(shape.bits, a);
    const PackedModelMatrix pb = Pack(shape.bits, b);
    for (size_t r = 0; r < a.size(); ++r) {
      std::vector<uint32_t> got(b.size());
      DistanceRow(pa, r, pb, got.data());
      EXPECT_EQ(got, NaiveDistanceRow(a[r], b)) << "bits=" << shape.bits;
    }
  }
}

TEST(PackedKernels, SelectWithinDistanceMatchesScalar) {
  Rng rng(17);
  for (const Shape& shape : kShapes) {
    const std::vector<Interpretation> t =
        RandomModels(&rng, shape.bits, shape.rows_a);
    const std::vector<Interpretation> p =
        RandomModels(&rng, shape.bits, shape.rows_b);
    const PackedModelMatrix pt = Pack(shape.bits, t);
    const PackedModelMatrix pp = Pack(shape.bits, p);
    for (const size_t k : {size_t{0}, size_t{1}, shape.bits / 2}) {
      const std::vector<uint32_t> want = NaiveSelectWithinDistance(p, t, k);
      for (const size_t threads : kThreadCounts) {
        ScopedThreads scope(threads);
        EXPECT_EQ(SelectWithinDistance(pp, pt, k), want)
            << "bits=" << shape.bits << " k=" << k
            << " threads=" << threads;
      }
    }
  }
}

TEST(PackedKernels, MinimalDiffsOfSetsMatchesScalar) {
  Rng rng(19);
  for (const Shape& shape : kShapes) {
    const std::vector<Interpretation> a =
        RandomModels(&rng, shape.bits, shape.rows_a);
    const std::vector<Interpretation> b =
        RandomModels(&rng, shape.bits, shape.rows_b);
    const PackedModelMatrix pa = Pack(shape.bits, a);
    const PackedModelMatrix pb = Pack(shape.bits, b);
    const std::vector<Interpretation> want = NaiveMinimalDiffs(a, b);
    for (const size_t threads : kThreadCounts) {
      ScopedThreads scope(threads);
      EXPECT_EQ(MinimalDiffsOfSets(pa, pb), want)
          << "bits=" << shape.bits << " threads=" << threads;
    }
  }
}

TEST(PackedKernels, SelectionKernelsMatchScalar) {
  Rng rng(23);
  for (const Shape& shape : kShapes) {
    const std::vector<Interpretation> t =
        RandomModels(&rng, shape.bits, shape.rows_a);
    const std::vector<Interpretation> p =
        RandomModels(&rng, shape.bits, shape.rows_b);
    const PackedModelMatrix pt = Pack(shape.bits, t);
    const PackedModelMatrix pp = Pack(shape.bits, p);

    const std::vector<Interpretation> delta = NaiveMinimalDiffs(t, p);
    const PackedModelMatrix pd = Pack(shape.bits, delta);
    Interpretation omega(shape.bits);
    for (const Interpretation& d : delta) omega = omega.Union(d);

    for (const size_t threads : kThreadCounts) {
      ScopedThreads scope(threads);
      EXPECT_EQ(SelectWithDiffInSorted(pp, pt, pd),
                NaiveSelectWithDiffIn(p, t, delta))
          << "bits=" << shape.bits << " threads=" << threads;
      EXPECT_EQ(SelectWithinMask(pp, pt, omega),
                NaiveSelectWithinMask(p, t, omega))
          << "bits=" << shape.bits << " threads=" << threads;
      EXPECT_EQ(SelectPointwiseMinimalDiffs(pt, pp),
                NaivePointwiseMinimalDiffs(t, p))
          << "bits=" << shape.bits << " threads=" << threads;
      EXPECT_EQ(SelectPointwiseMinDistance(pt, pp),
                NaivePointwiseMinDistance(t, p))
          << "bits=" << shape.bits << " threads=" << threads;
    }
  }
}

TEST(PackedKernels, EmptySets) {
  Rng rng(29);
  const PackedModelMatrix empty(64, 0);
  const PackedModelMatrix some = Pack(64, RandomModels(&rng, 64, 5));
  EXPECT_EQ(MinDistanceOfSets(empty, some, 65), 65u);
  EXPECT_EQ(MinDistanceOfSets(some, empty, 65), 65u);
  EXPECT_EQ(MinDistanceOfSets(empty, empty, 65), 65u);
  EXPECT_TRUE(SelectWithinDistance(empty, some, 64).empty());
  EXPECT_TRUE(SelectWithinDistance(some, empty, 64).empty());
  EXPECT_TRUE(MinimalDiffsOfSets(empty, some).empty());
  EXPECT_TRUE(MinimalDiffsOfSets(some, empty).empty());
  EXPECT_TRUE(SelectPointwiseMinimalDiffs(empty, some).empty());
  EXPECT_TRUE(SelectPointwiseMinDistance(some, empty).empty());
}

// ---- extremal filters and mask kernels -----------------------------------

TEST(PackedKernels, MinimalAndMaximalInterpretationsMatchNaive) {
  Rng rng(31);
  for (const size_t bits : {size_t{1}, size_t{17}, size_t{64}, size_t{65},
                            size_t{130}}) {
    // Feed raw (unsorted, duplicated) inputs: the kernels canonicalize.
    std::vector<Interpretation> sets = RandomModels(&rng, bits, 40);
    const size_t original = sets.size();
    for (size_t i = 0; i < original / 3; ++i) sets.push_back(sets[i]);
    for (const size_t threads : kThreadCounts) {
      ScopedThreads scope(threads);
      EXPECT_EQ(MinimalInterpretations(sets), NaiveMinimal(sets))
          << "bits=" << bits << " threads=" << threads;
      EXPECT_EQ(MaximalInterpretations(sets), NaiveMaximal(sets))
          << "bits=" << bits << " threads=" << threads;
    }
  }
  EXPECT_TRUE(MinimalInterpretations({}).empty());
  EXPECT_TRUE(MaximalInterpretations({}).empty());
}

TEST(PackedKernels, MinimalMasksAndMinPopcountMatchNaive) {
  Rng rng(37);
  for (int round = 0; round < 20; ++round) {
    const size_t width = 1 + rng.Below(20);
    std::vector<uint64_t> masks;
    const size_t count = rng.Below(30);
    for (size_t i = 0; i < count; ++i) {
      masks.push_back(rng.Next() & ((uint64_t{1} << width) - 1));
    }
    // Naive minimal masks: unique s with no proper submask present.
    std::vector<uint64_t> want;
    for (const uint64_t s : masks) {
      bool dominated = false;
      for (const uint64_t s2 : masks) {
        if (s2 != s && (s2 & ~s) == 0) {
          dominated = true;
          break;
        }
      }
      if (!dominated &&
          std::find(want.begin(), want.end(), s) == want.end()) {
        want.push_back(s);
      }
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(MinimalMasks(masks), want);

    size_t min_pop = 99;
    for (const uint64_t s : masks) {
      min_pop = std::min<size_t>(min_pop, std::popcount(s));
    }
    EXPECT_EQ(MinPopcount(masks, 99), min_pop);
  }
  EXPECT_TRUE(MinimalMasks({}).empty());
  EXPECT_EQ(MinPopcount({}, 42u), 42u);
}

// ---- runtime toggle ------------------------------------------------------

TEST(PackedKernels, ToggleRoutesModelSetExtremalFilters) {
  ASSERT_TRUE(PackedKernelsEnabled());  // default
  Rng rng(41);
  const std::vector<Interpretation> sets = RandomModels(&rng, 65, 30);
  const std::vector<Interpretation> packed = MinimalUnderInclusion(sets);
  SetPackedKernelsEnabled(false);
  const std::vector<Interpretation> scalar = MinimalUnderInclusion(sets);
  SetPackedKernelsEnabled(true);
  EXPECT_EQ(packed, scalar);
  EXPECT_EQ(packed, NaiveMinimal(sets));
}

TEST(PackedKernels, ActiveSimdPathIsKnown) {
  const std::string path = ActiveSimdPath();
  EXPECT_TRUE(path == "off" || path == "swar" || path == "avx2" ||
              path == "neon")
      << path;
}

}  // namespace
}  // namespace revise::kernel
