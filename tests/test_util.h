// Shared helpers for the librevise test suites: brute-force reference
// implementations used to cross-validate the SAT-based machinery.

#ifndef REVISE_TESTS_TEST_UTIL_H_
#define REVISE_TESTS_TEST_UTIL_H_

#include <vector>

#include "logic/evaluate.h"
#include "logic/formula.h"
#include "logic/interpretation.h"
#include "model/model_set.h"
#include "util/check.h"

namespace revise::testing {

// All models of `f` over `alphabet` by exhaustive evaluation
// (alphabet.size() <= 20 expected).
inline ModelSet BruteForceModels(const Formula& f, const Alphabet& alphabet) {
  REVISE_CHECK_LE(alphabet.size(), 24u);
  std::vector<Interpretation> models;
  const uint64_t total = uint64_t{1} << alphabet.size();
  for (uint64_t index = 0; index < total; ++index) {
    Interpretation m = Interpretation::FromIndex(alphabet.size(), index);
    if (Evaluate(f, alphabet, m)) models.push_back(m);
  }
  return ModelSet(alphabet, std::move(models));
}

inline bool BruteForceSat(const Formula& f, const Alphabet& alphabet) {
  const uint64_t total = uint64_t{1} << alphabet.size();
  for (uint64_t index = 0; index < total; ++index) {
    if (Evaluate(f, alphabet,
                 Interpretation::FromIndex(alphabet.size(), index))) {
      return true;
    }
  }
  return false;
}

}  // namespace revise::testing

#endif  // REVISE_TESTS_TEST_UTIL_H_
