// Tests for the OpenMetrics exposition and its round-trip parser
// (obs/openmetrics.h): a golden-file rendering covering every metric
// kind, cumulative-bucket invariants, name sanitization and label
// escaping edge cases (including UTF-8), the process-level block, the
// JSON snapshot twin, and the parser's structural error checks.

#include "obs/openmetrics.h"

#include <cstdio>
#include <limits>
#include <string>

#include "gtest/gtest.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace revise::obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  return text;
}

// One instrument of every kind, with values chosen so each exposition
// feature shows up: a negative gauge, exact low histogram buckets
// (values below kSubBuckets are exact) and one log-bucketed value
// (100 lands in the bucket with upper bound 103).
void PopulateKindsRegistry(Registry* registry) {
  registry->GetCounter("revise.queries")->Increment(7);
  registry->GetCounter("sat.conflicts")->Increment(123);
  registry->GetGauge("bdd.nodes")->Set(-7);
  registry->GetGauge("obs.queue_depth")->Set(42);
  Histogram* histogram = registry->GetHistogram("revise.dalal_size");
  histogram->Record(1);
  histogram->Record(1);
  histogram->Record(3);
  histogram->Record(100);
}

// --- rendering ---------------------------------------------------------

TEST(OpenMetricsRenderTest, MatchesGoldenExposition) {
  Registry registry;
  PopulateKindsRegistry(&registry);
  const std::string rendered =
      RenderOpenMetricsFrom(registry, {.include_process = false});
  const std::string golden_path =
      std::string(REVISE_OM_GOLDEN_DIR) + "/metrics_kinds.om";
  const std::string golden = ReadFileOrEmpty(golden_path);
  ASSERT_FALSE(golden.empty()) << "cannot read " << golden_path;
  EXPECT_EQ(rendered, golden);
}

TEST(OpenMetricsRenderTest, EveryKindRoundTrips) {
  Registry registry;
  PopulateKindsRegistry(&registry);
  const std::string text =
      RenderOpenMetricsFrom(registry, {.include_process = false});
  StatusOr<ParsedMetrics> parsed = ParseOpenMetrics(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->saw_eof);

  EXPECT_EQ(parsed->counters.at("revise_queries"), 7u);
  EXPECT_EQ(parsed->counters.at("sat_conflicts"), 123u);
  EXPECT_EQ(parsed->gauges.at("bdd_nodes"), -7);
  EXPECT_EQ(parsed->gauges.at("obs_queue_depth"), 42);

  ASSERT_EQ(parsed->histograms.count("revise_dalal_size"), 1u);
  const ParsedHistogram& histogram =
      parsed->histograms.at("revise_dalal_size");
  EXPECT_TRUE(histogram.has_count);
  EXPECT_TRUE(histogram.has_sum);
  EXPECT_EQ(histogram.count, 4u);
  EXPECT_EQ(histogram.sum, 105u);
  ASSERT_EQ(histogram.cumulative_buckets.size(), 4u);
  EXPECT_EQ(histogram.cumulative_buckets[0],
            (std::pair<double, uint64_t>{1.0, 2}));
  EXPECT_EQ(histogram.cumulative_buckets[1],
            (std::pair<double, uint64_t>{3.0, 3}));
  EXPECT_EQ(histogram.cumulative_buckets[2],
            (std::pair<double, uint64_t>{103.0, 4}));
  EXPECT_EQ(histogram.cumulative_buckets[3],
            (std::pair<double, uint64_t>{kInf, 4}));
}

TEST(OpenMetricsRenderTest, EmptyRegistryIsJustEof) {
  const Registry registry;
  const std::string text =
      RenderOpenMetricsFrom(registry, {.include_process = false});
  EXPECT_EQ(text, "# EOF\n");
  StatusOr<ParsedMetrics> parsed = ParseOpenMetrics(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->saw_eof);
  EXPECT_TRUE(parsed->counters.empty());
  EXPECT_TRUE(parsed->gauges.empty());
  EXPECT_TRUE(parsed->histograms.empty());
}

TEST(OpenMetricsRenderTest, WideHistogramKeepsCumulativeInvariants) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("revise.spread");
  for (uint64_t i = 0; i < 100; ++i) histogram->Record(i * i);
  histogram->Record(uint64_t{1000000007});
  const std::string text =
      RenderOpenMetricsFrom(registry, {.include_process = false});
  StatusOr<ParsedMetrics> parsed = ParseOpenMetrics(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ParsedHistogram& spread = parsed->histograms.at("revise_spread");
  EXPECT_EQ(spread.count, 101u);
  ASSERT_FALSE(spread.cumulative_buckets.empty());
  double previous_le = -kInf;
  uint64_t previous_count = 0;
  for (const auto& [le, cumulative] : spread.cumulative_buckets) {
    EXPECT_GT(le, previous_le);
    EXPECT_GE(cumulative, previous_count);
    previous_le = le;
    previous_count = cumulative;
  }
  EXPECT_EQ(spread.cumulative_buckets.back().first, kInf);
  EXPECT_EQ(spread.cumulative_buckets.back().second, spread.count);
}

// --- name sanitization and label escaping ------------------------------

TEST(OpenMetricsNameTest, SanitizeMapsDotsToUnderscores) {
  EXPECT_EQ(SanitizeMetricName("sat.conflicts"), "sat_conflicts");
  EXPECT_EQ(SanitizeMetricName("obs.uptime_seconds"), "obs_uptime_seconds");
  EXPECT_EQ(SanitizeMetricName("already_fine"), "already_fine");
}

TEST(OpenMetricsNameTest, SanitizeReplacesOutOfGrammarBytes) {
  EXPECT_EQ(SanitizeMetricName("sat-conflicts"), "sat_conflicts");
  // A leading digit is not a valid name start (the obs-name lint rule
  // rejects such instrument names before they reach the exposition).
  EXPECT_EQ(SanitizeMetricName("9lives.retries"), "_lives_retries");
  // UTF-8 is out of grammar for metric *names*: each byte of the
  // two-byte 'é' becomes '_'.
  EXPECT_EQ(SanitizeMetricName("h\xc3\xa9llo"), "h__llo");
}

TEST(OpenMetricsLabelTest, EscapeCoversSpecTriples) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("line\nbreak"), "line\\nbreak");
}

TEST(OpenMetricsLabelTest, Utf8PassesThroughUnescaped) {
  const std::string greek = "\xce\xb1\xce\xb2\xce\xb3";  // αβγ
  EXPECT_EQ(EscapeLabelValue(greek), greek);
}

TEST(OpenMetricsLabelTest, EscapedLabelsRoundTripThroughParser) {
  const std::string raw_sha = "ab\\cd \"tag\"\n\xce\xb1";
  const std::string text = "# TYPE revise_build info\n"
                           "revise_build_info{git_sha=\"" +
                           EscapeLabelValue(raw_sha) +
                           "\",compiler=\"g++\"} 1\n# EOF\n";
  StatusOr<ParsedMetrics> parsed = ParseOpenMetrics(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->infos.count("revise_build"), 1u);
  EXPECT_EQ(parsed->infos.at("revise_build").at("git_sha"), raw_sha);
  EXPECT_EQ(parsed->infos.at("revise_build").at("compiler"), "g++");
}

// --- the process-level block and the JSON twin -------------------------

TEST(OpenMetricsGlobalTest, ProcessBlockParsesAndCarriesBuildInfo) {
  Registry::Global().GetCounter("obs.openmetrics_test_events")->Increment(3);
  const std::string text = RenderOpenMetrics();
  StatusOr<ParsedMetrics> parsed = ParseOpenMetrics(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->infos.count("revise_build"), 1u);
  const std::map<std::string, std::string>& build =
      parsed->infos.at("revise_build");
  EXPECT_EQ(build.count("git_sha"), 1u);
  EXPECT_EQ(build.count("compiler"), 1u);
  EXPECT_EQ(build.count("build_type"), 1u);
  EXPECT_EQ(parsed->gauges.count("mem_peak_rss_bytes"), 1u);
  EXPECT_EQ(parsed->gauges.count("mem_current_rss_bytes"), 1u);
  EXPECT_EQ(parsed->gauges.count("obs_uptime_seconds"), 1u);
  EXPECT_GE(parsed->counters.at("obs_openmetrics_test_events"), 3u);
}

TEST(OpenMetricsJsonTest, SnapshotSharesSchemaShapes) {
  Registry::Global().GetCounter("obs.openmetrics_test_events")->Increment();
  const Json doc = MetricsSnapshotJson();
  ASSERT_TRUE(doc.Has("schema_version"));
  EXPECT_EQ(doc.Find("schema_version")->AsInt(), kSchemaVersion);
  EXPECT_EQ(doc.Find("schema_minor")->AsInt(), kSchemaMinor);
  EXPECT_GE(doc.Find("uptime_seconds")->AsDouble(), 0.0);
  ASSERT_TRUE(doc.Has("counters"));
  ASSERT_TRUE(doc.Has("gauges"));
  ASSERT_TRUE(doc.Has("histograms"));
  ASSERT_TRUE(doc.Has("memory"));
  EXPECT_TRUE(doc.Find("memory")->Has("peak_rss_bytes"));
}

TEST(OpenMetricsJsonTest, ExpositionAndJsonAgreeOnValues) {
  Registry::Global().GetGauge("obs.openmetrics_roundtrip")->Set(9126);
  StatusOr<ParsedMetrics> parsed = ParseOpenMetrics(RenderOpenMetrics());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json doc = MetricsSnapshotJson();
  const Json* gauge = doc.Find("gauges")->Find("obs.openmetrics_roundtrip");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->AsInt(), 9126);
  EXPECT_EQ(parsed->gauges.at("obs_openmetrics_roundtrip"), 9126);
}

// --- parser error cases ------------------------------------------------

std::string ParseFailure(std::string_view text) {
  StatusOr<ParsedMetrics> parsed = ParseOpenMetrics(text);
  EXPECT_FALSE(parsed.ok()) << "unexpectedly parsed:\n" << text;
  return parsed.ok() ? std::string() : parsed.status().ToString();
}

TEST(OpenMetricsParseErrorTest, MissingEofTerminator) {
  EXPECT_NE(ParseFailure("# TYPE a counter\na_total 1\n")
                .find("missing # EOF"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, ContentAfterEof) {
  EXPECT_NE(ParseFailure("# EOF\n# TYPE a counter\n")
                .find("content after # EOF"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, SampleBeforeType) {
  EXPECT_NE(ParseFailure("orphan 1\n# EOF\n")
                .find("sample before any # TYPE"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, CounterMissingTotalSuffix) {
  EXPECT_NE(ParseFailure("# TYPE a counter\na 1\n# EOF\n")
                .find("must end in _total"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, GaugeWithSuffix) {
  EXPECT_NE(ParseFailure("# TYPE g gauge\ng_total 1\n# EOF\n")
                .find("gauge sample must be bare"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, SampleOutsideFamily) {
  EXPECT_NE(ParseFailure("# TYPE a counter\nb_total 1\n# EOF\n")
                .find("outside family"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, UnsupportedType) {
  EXPECT_NE(ParseFailure("# TYPE x summary\n# EOF\n")
                .find("unsupported type"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, BadCounterValue) {
  EXPECT_NE(ParseFailure("# TYPE a counter\na_total 12x\n# EOF\n")
                .find("bad unsigned value"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, CumulativeCountsDecreasing) {
  EXPECT_NE(ParseFailure("# TYPE h histogram\n"
                         "h_bucket{le=\"1.0\"} 5\n"
                         "h_bucket{le=\"2.0\"} 3\n"
                         "h_bucket{le=\"+Inf\"} 5\n"
                         "h_count 5\nh_sum 9\n# EOF\n")
                .find("cumulative bucket counts decreased"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, BucketBoundsNotIncreasing) {
  EXPECT_NE(ParseFailure("# TYPE h histogram\n"
                         "h_bucket{le=\"2.0\"} 1\n"
                         "h_bucket{le=\"1.0\"} 2\n"
                         "h_bucket{le=\"+Inf\"} 2\n"
                         "h_count 2\nh_sum 3\n# EOF\n")
                .find("le values not increasing"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, InfBucketDisagreesWithCount) {
  EXPECT_NE(ParseFailure("# TYPE h histogram\n"
                         "h_bucket{le=\"1.0\"} 2\n"
                         "h_bucket{le=\"+Inf\"} 3\n"
                         "h_count 4\nh_sum 5\n# EOF\n")
                .find("+Inf bucket != _count"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, MissingInfBucket) {
  EXPECT_NE(ParseFailure("# TYPE h histogram\n"
                         "h_bucket{le=\"1.0\"} 2\n"
                         "h_count 2\nh_sum 2\n# EOF\n")
                .find("missing +Inf bucket"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, UnterminatedLabelSet) {
  EXPECT_NE(ParseFailure("# TYPE h histogram\n"
                         "h_bucket{le=\"1.0\" 2\n# EOF\n")
                .find("unterminated label set"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, UnknownLabelEscape) {
  EXPECT_NE(ParseFailure("# TYPE b info\n"
                         "b_info{tag=\"bad\\q\"} 1\n# EOF\n")
                .find("unknown escape"),
            std::string::npos);
}

TEST(OpenMetricsParseErrorTest, InfoValueMustBeOne) {
  EXPECT_NE(ParseFailure("# TYPE b info\nb_info{tag=\"x\"} 2\n# EOF\n")
                .find("info sample value must be 1"),
            std::string::npos);
}

}  // namespace
}  // namespace revise::obs
