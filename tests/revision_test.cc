#include <gtest/gtest.h>

#include <set>
#include <string>

#include "hardness/random_instances.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "model/canonical.h"
#include "revision/candidates.h"
#include "revision/formula_based.h"
#include "revision/iterated.h"
#include "revision/model_based.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace revise {
namespace {

using ::revise::testing::BruteForceModels;
using ::revise::testing::BruteForceSat;

// Builds an interpretation over `alphabet` from named letters.
Interpretation MakeModel(const Alphabet& alphabet,
                         const Vocabulary& vocabulary,
                         const std::vector<std::string>& true_letters) {
  Interpretation m(alphabet.size());
  for (const std::string& name : true_letters) {
    const Var v = vocabulary.Find(name);
    EXPECT_NE(kInvalidVar, v) << name;
    const auto index = alphabet.IndexOf(v);
    EXPECT_TRUE(index.has_value()) << name;
    m.Set(*index, true);
  }
  return m;
}

ModelSet MakeModelSet(const Alphabet& alphabet,
                      const Vocabulary& vocabulary,
                      std::vector<std::vector<std::string>> models) {
  std::vector<Interpretation> result;
  for (const auto& letters : models) {
    result.push_back(MakeModel(alphabet, vocabulary, letters));
  }
  return ModelSet(alphabet, std::move(result));
}

// -------------------------------------------------------------------------
// Section 2.2.2 worked example: T = a&b&c,
// P = (!a & !b & !d) | (!c & b & (a ^ d)).
// -------------------------------------------------------------------------
class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t_ = Theory({ParseOrDie("a & b & c", &vocabulary_)});
    p_ = ParseOrDie("(!a & !b & !d) | (!c & b & (a ^ d))", &vocabulary_);
    alphabet_ = Alphabet({vocabulary_.Find("a"), vocabulary_.Find("b"),
                          vocabulary_.Find("c"), vocabulary_.Find("d")});
  }

  ModelSet Expect(std::vector<std::vector<std::string>> models) {
    return MakeModelSet(alphabet_, vocabulary_, std::move(models));
  }

  Vocabulary vocabulary_;
  Theory t_;
  Formula p_;
  Alphabet alphabet_;
};

TEST_F(PaperExampleTest, ModelsOfTAndP) {
  const ModelSet mt = EnumerateModels(t_.AsFormula(), alphabet_);
  EXPECT_EQ(Expect({{"a", "b", "c", "d"}, {"a", "b", "c"}}), mt);
  const ModelSet mp = EnumerateModels(p_, alphabet_);
  EXPECT_EQ(Expect({{"a", "b"}, {"c"}, {"b", "d"}, {}}), mp);
}

TEST_F(PaperExampleTest, WinslettSelectsN1N2N3) {
  const ModelSet result =
      WinslettOperator().ReviseModels(t_, p_, alphabet_);
  EXPECT_EQ(Expect({{"a", "b"}, {"c"}, {"b", "d"}}), result);
}

TEST_F(PaperExampleTest, BorgidaCoincidesWithWinslettWhenInconsistent) {
  const ModelSet result =
      BorgidaOperator().ReviseModels(t_, p_, alphabet_);
  EXPECT_EQ(Expect({{"a", "b"}, {"c"}, {"b", "d"}}), result);
}

TEST_F(PaperExampleTest, ForbusSelectsN1N3) {
  const ModelSet result = ForbusOperator().ReviseModels(t_, p_, alphabet_);
  EXPECT_EQ(Expect({{"a", "b"}, {"b", "d"}}), result);
}

TEST_F(PaperExampleTest, SatohSelectsN1N2) {
  const ModelSet result = SatohOperator().ReviseModels(t_, p_, alphabet_);
  EXPECT_EQ(Expect({{"a", "b"}, {"c"}}), result);
}

TEST_F(PaperExampleTest, DalalSelectsOnlyN1) {
  const ModelSet result = DalalOperator().ReviseModels(t_, p_, alphabet_);
  EXPECT_EQ(Expect({{"a", "b"}}), result);
}

TEST_F(PaperExampleTest, WeberSelectsAllModelsOfP) {
  const ModelSet result = WeberOperator().ReviseModels(t_, p_, alphabet_);
  EXPECT_EQ(Expect({{"a", "b"}, {"c"}, {"b", "d"}, {}}), result);
}

TEST_F(PaperExampleTest, MuOfM1MatchesPaper) {
  // mu(M1, P) = {{c,d}, {a,b,d}, {a,c}} for M1 = {a,b,c,d}.
  const ModelSet mp = EnumerateModels(p_, alphabet_);
  const Interpretation m1 =
      MakeModel(alphabet_, vocabulary_, {"a", "b", "c", "d"});
  auto mu = PointwiseMinimalDiffs(m1, mp);
  const ModelSet mu_set(alphabet_, std::move(mu));
  EXPECT_EQ(Expect({{"c", "d"}, {"a", "b", "d"}, {"a", "c"}}), mu_set);
}

TEST_F(PaperExampleTest, MuOfM2MatchesPaper) {
  // mu(M2, P) = {{c}, {a,b}} for M2 = {a,b,c}.
  const ModelSet mp = EnumerateModels(p_, alphabet_);
  const Interpretation m2 = MakeModel(alphabet_, vocabulary_, {"a", "b", "c"});
  auto mu = PointwiseMinimalDiffs(m2, mp);
  const ModelSet mu_set(alphabet_, std::move(mu));
  EXPECT_EQ(Expect({{"c"}, {"a", "b"}}), mu_set);
}

// -------------------------------------------------------------------------
// Section 4 worked example: T = a&b&c&d&e, P = !a | !b.
// -------------------------------------------------------------------------
class Section4ExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t_ = Theory({ParseOrDie("a & b & c & d & e", &vocabulary_)});
    p_ = ParseOrDie("!a | !b", &vocabulary_);
    alphabet_ = RevisionAlphabet(t_, p_);
  }

  ModelSet Expect(std::vector<std::vector<std::string>> models) {
    return MakeModelSet(alphabet_, vocabulary_, std::move(models));
  }

  Vocabulary vocabulary_;
  Theory t_;
  Formula p_;
  Alphabet alphabet_;
};

TEST_F(Section4ExampleTest, ForbusAndDalalAndSatohModels) {
  const ModelSet expected =
      Expect({{"a", "c", "d", "e"}, {"b", "c", "d", "e"}});
  EXPECT_EQ(expected, ForbusOperator().ReviseModels(t_, p_, alphabet_));
  EXPECT_EQ(expected, DalalOperator().ReviseModels(t_, p_, alphabet_));
  EXPECT_EQ(expected, SatohOperator().ReviseModels(t_, p_, alphabet_));
  EXPECT_EQ(expected, WinslettOperator().ReviseModels(t_, p_, alphabet_));
}

TEST_F(Section4ExampleTest, WeberAddsThirdModel) {
  const ModelSet expected = Expect(
      {{"a", "c", "d", "e"}, {"b", "c", "d", "e"}, {"c", "d", "e"}});
  EXPECT_EQ(expected, WeberOperator().ReviseModels(t_, p_, alphabet_));
}

// -------------------------------------------------------------------------
// Section 2.2.1 example: sensitivity to syntax of formula-based revision.
// -------------------------------------------------------------------------
TEST(FormulaBasedTest, SyntaxSensitivityExample) {
  Vocabulary vocabulary;
  const Theory t1 = Theory::ParseOrDie("a; b", &vocabulary);
  const Theory t2 = Theory::ParseOrDie("a; a -> b", &vocabulary);
  const Formula p = ParseOrDie("!b", &vocabulary);

  // T1 and T2 are logically equivalent.
  EXPECT_TRUE(AreEquivalent(t1.AsFormula(), t2.AsFormula()));

  // T1 *_GFUV P == a & !b;  T2 *_GFUV P == !b.
  EXPECT_TRUE(AreEquivalent(GfuvFormula(t1, p),
                            ParseOrDie("a & !b", &vocabulary)));
  EXPECT_TRUE(
      AreEquivalent(GfuvFormula(t2, p), ParseOrDie("!b", &vocabulary)));

  // WIDTIO gives the same results here (per the paper).
  EXPECT_TRUE(AreEquivalent(WidtioTheory(t1, p).AsFormula(),
                            ParseOrDie("a & !b", &vocabulary)));
  EXPECT_TRUE(AreEquivalent(WidtioTheory(t2, p).AsFormula(),
                            ParseOrDie("!b", &vocabulary)));
}

TEST(FormulaBasedTest, MaximalConsistentSubsetsBasics) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a; b; a -> b", &vocabulary);
  const Formula p = ParseOrDie("!b", &vocabulary);
  // Consistent-with-!b subsets: {a}, {a->b} maximal? {a, a->b} |= b:
  // inconsistent.  Maximal: {a} and {a->b}.  Masks: 0b001 and 0b100.
  const auto worlds = MaximalConsistentSubsets(t, p);
  const std::set<uint64_t> got(worlds.begin(), worlds.end());
  EXPECT_EQ((std::set<uint64_t>{0b001, 0b100}), got);
}

TEST(FormulaBasedTest, WholeTheoryConsistentGivesSingleWorld) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a; b", &vocabulary);
  const Formula p = ParseOrDie("a | b", &vocabulary);
  const auto worlds = MaximalConsistentSubsets(t, p);
  ASSERT_EQ(1u, worlds.size());
  EXPECT_EQ(0b11u, worlds[0]);
}

TEST(FormulaBasedTest, UnsatisfiablePGivesNoWorlds) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a", &vocabulary);
  const Formula p = ParseOrDie("b & !b", &vocabulary);
  EXPECT_TRUE(MaximalConsistentSubsets(t, p).empty());
}

TEST(FormulaBasedTest, AllElementsInconsistentGivesEmptyWorld) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("b; b | b", &vocabulary);
  const Formula p = ParseOrDie("!b", &vocabulary);
  const auto worlds = MaximalConsistentSubsets(t, p);
  ASSERT_EQ(1u, worlds.size());
  EXPECT_EQ(0u, worlds[0]);
}

TEST(FormulaBasedTest, EmptyTheory) {
  Vocabulary vocabulary;
  const Theory t;
  const Formula p = ParseOrDie("a", &vocabulary);
  const auto worlds = MaximalConsistentSubsets(t, p);
  ASSERT_EQ(1u, worlds.size());
  EXPECT_EQ(0u, worlds[0]);
}

TEST(FormulaBasedTest, NebelExampleExponentialWorlds) {
  // Nebel's T1 = {x1..xm, y1..ym}, P1 = AND(xi ^ yi): |W| = 2^m.
  Vocabulary vocabulary;
  Theory t;
  std::vector<Formula> equivalences;
  const int m = 3;
  for (int i = 0; i < m; ++i) {
    const Formula x =
        Formula::Variable(vocabulary.Intern("x" + std::to_string(i)));
    const Formula y =
        Formula::Variable(vocabulary.Intern("y" + std::to_string(i)));
    t.Add(x);
    t.Add(y);
    equivalences.push_back(Formula::Xor(x, y));
  }
  const Formula p = ConjoinAll(equivalences);
  EXPECT_EQ(8u, MaximalConsistentSubsets(t, p).size());
  // And the GFUV revision is nevertheless equivalent to P itself here.
  EXPECT_TRUE(AreEquivalent(GfuvFormula(t, p), p));
}

TEST(FormulaBasedTest, NebelPrioritiesOverrideGfuvChoice) {
  Vocabulary vocabulary;
  const Formula a = ParseOrDie("a", &vocabulary);
  const Formula b = ParseOrDie("b", &vocabulary);
  const Formula p = ParseOrDie("!(a & b)", &vocabulary);
  // With a prioritized over b, only {a} survives.
  const auto worlds =
      PrioritizedMaximalSubsets({Theory({a}), Theory({b})}, p);
  ASSERT_EQ(1u, worlds.size());
  EXPECT_EQ(0b01u, worlds[0]);
  // GFUV (flat) keeps both possible worlds.
  const auto flat = MaximalConsistentSubsets(Theory({a, b}), p);
  EXPECT_EQ(2u, flat.size());
}

TEST(FormulaBasedTest, NebelWithSingleClassMatchesGfuv) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a; b; a -> b", &vocabulary);
  const Formula p = ParseOrDie("!b", &vocabulary);
  const auto nebel = PrioritizedMaximalSubsets({t}, p);
  const auto gfuv = MaximalConsistentSubsets(t, p);
  EXPECT_EQ(std::set<uint64_t>(gfuv.begin(), gfuv.end()),
            std::set<uint64_t>(nebel.begin(), nebel.end()));
}

// -------------------------------------------------------------------------
// Intro example (Section 1): revision vs update.
// -------------------------------------------------------------------------
TEST(IntroExampleTest, RevisionConcludesBillWasInOffice) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("g | b", &vocabulary);
  const Formula p = ParseOrDie("!g", &vocabulary);
  // Dalal (a *revision* operator): T & P consistent, result == T & P.
  const DalalOperator dalal;
  EXPECT_TRUE(dalal.Entails(t, p, ParseOrDie("b", &vocabulary)));
}

TEST(IntroExampleTest, UpdateDoesNotConcludeBillWasInOffice) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("g | b", &vocabulary);
  const Formula p = ParseOrDie("!g", &vocabulary);
  // Winslett (an *update* operator): even though T & P is consistent, the
  // result keeps a model where Bill is absent.
  const WinslettOperator winslett;
  EXPECT_FALSE(winslett.Entails(t, p, ParseOrDie("b", &vocabulary)));
  // The update result here is exactly P.
  const Alphabet alphabet = RevisionAlphabet(t, p);
  EXPECT_EQ(EnumerateModels(p, alphabet),
            winslett.ReviseModels(t, p, alphabet));
}

// -------------------------------------------------------------------------
// Property tests on random instances.
// -------------------------------------------------------------------------
struct RandomRevisionCase {
  int seed;
  int num_vars;
};

class RandomRevisionTest
    : public ::testing::TestWithParam<RandomRevisionCase> {
 protected:
  void SetUp() override {
    for (int i = 0; i < GetParam().num_vars; ++i) {
      vars_.push_back(vocabulary_.Intern("v" + std::to_string(i)));
    }
    alphabet_ = Alphabet(vars_);
  }

  // Draws a satisfiable random formula.
  Formula DrawSatisfiable(Rng* rng) {
    for (;;) {
      Formula f = RandomFormula(vars_, 4, rng);
      if (BruteForceSat(f, alphabet_)) return f;
    }
  }

  Vocabulary vocabulary_;
  std::vector<Var> vars_;
  Alphabet alphabet_;
};

TEST_P(RandomRevisionTest, Figure1Containments) {
  Rng rng(GetParam().seed);
  for (int trial = 0; trial < 20; ++trial) {
    const Theory t = Theory({DrawSatisfiable(&rng)});
    const Formula p = DrawSatisfiable(&rng);
    const ModelSet mt = BruteForceModels(t.AsFormula(), alphabet_);
    const ModelSet mp = BruteForceModels(p, alphabet_);
    const ModelSet win = WinslettModels(mt, mp);
    const ModelSet borgida = BorgidaModels(mt, mp);
    const ModelSet forbus = ForbusModels(mt, mp);
    const ModelSet satoh = SatohModels(mt, mp);
    const ModelSet dalal = DalalModels(mt, mp);
    const ModelSet weber = WeberModels(mt, mp);
    // The arrows of Figure 1.
    EXPECT_TRUE(dalal.IsSubsetOf(forbus));
    EXPECT_TRUE(dalal.IsSubsetOf(satoh));
    EXPECT_TRUE(dalal.IsSubsetOf(borgida));
    EXPECT_TRUE(forbus.IsSubsetOf(win));
    EXPECT_TRUE(satoh.IsSubsetOf(win));
    EXPECT_TRUE(satoh.IsSubsetOf(weber));
    EXPECT_TRUE(borgida.IsSubsetOf(win));
    // Everything is a set of models of P, and nonempty.
    for (const ModelSet* s :
         {&win, &borgida, &forbus, &satoh, &dalal, &weber}) {
      EXPECT_TRUE(s->IsSubsetOf(mp));
      EXPECT_FALSE(s->empty());
    }
  }
}

TEST_P(RandomRevisionTest, ConsistentCaseCollapsesForRevisionOperators) {
  Rng rng(GetParam().seed + 1000);
  for (int trial = 0; trial < 20; ++trial) {
    const Theory t = Theory({DrawSatisfiable(&rng)});
    const Formula p = DrawSatisfiable(&rng);
    const Formula both = Formula::And(t.AsFormula(), p);
    if (!BruteForceSat(both, alphabet_)) continue;
    const ModelSet expected = BruteForceModels(both, alphabet_);
    const ModelSet mt = BruteForceModels(t.AsFormula(), alphabet_);
    const ModelSet mp = BruteForceModels(p, alphabet_);
    // A fundamental property of *revision*: consistent T & P is the
    // result.  Holds for Borgida, Satoh, Dalal, Weber; NOT for the update
    // operators Winslett and Forbus.
    EXPECT_EQ(expected, BorgidaModels(mt, mp));
    EXPECT_EQ(expected, SatohModels(mt, mp));
    EXPECT_EQ(expected, DalalModels(mt, mp));
    EXPECT_EQ(expected, WeberModels(mt, mp));
    // Update operators still contain all of M(T & P).
    EXPECT_TRUE(expected.IsSubsetOf(WinslettModels(mt, mp)));
    EXPECT_TRUE(expected.IsSubsetOf(ForbusModels(mt, mp)));
  }
}

// Proposition 2.1 (in the form Eiter and Gottlob's Lemma 6.1 proof uses
// it): the revision only involves letters of P.  Concretely:
//  (a) every selected model N of T * P differs from SOME model of T only
//      on V(P) — holds for all six model-based operators;
//  (b) for the pointwise operators (Winslett, Forbus) additionally EVERY
//      model M of T has a selected witness N with M delta N ⊆ V(P).
// (The literal per-M form fails for the global operators: with
// T = (!p & !a) | (p & a) and P = p, Dalal selects only {p,a}, and the
// T-model {} has no selected model within V(P) = {p}.)
TEST_P(RandomRevisionTest, Proposition21BoundedDistanceWitness) {
  Rng rng(GetParam().seed + 2000);
  for (int trial = 0; trial < 10; ++trial) {
    const Theory t = Theory({DrawSatisfiable(&rng)});
    // P over a sub-alphabet so V(P) ⊂ V(T) is typical.
    std::vector<Var> p_vars(vars_.begin(),
                            vars_.begin() + 1 + rng.Below(vars_.size()));
    Formula p = RandomFormula(p_vars, 3, &rng);
    if (!BruteForceSat(p, alphabet_)) continue;
    const ModelSet mt = BruteForceModels(t.AsFormula(), alphabet_);
    const ModelSet mp = BruteForceModels(p, alphabet_);
    Interpretation vp_mask(alphabet_.size());
    for (const Var v : p.Vars()) {
      vp_mask.Set(*alphabet_.IndexOf(v), true);
    }
    for (const ModelBasedOperator* op : AllModelBasedOperators()) {
      const ModelSet revised = op->ReviseModelSets(mt, mp);
      // (a) every selected model has a T-model witness within V(P).
      for (const Interpretation& n : revised) {
        bool witness = false;
        for (const Interpretation& m : mt) {
          if (n.SymmetricDifference(m).IsSubsetOf(vp_mask)) {
            witness = true;
            break;
          }
        }
        EXPECT_TRUE(witness) << op->name();
      }
    }
    // (b) pointwise operators: every T-model has a selected witness.
    const WinslettOperator winslett;
    const ForbusOperator forbus;
    for (const ModelBasedOperator* op :
         std::initializer_list<const ModelBasedOperator*>{&winslett,
                                                          &forbus}) {
      const ModelSet revised = op->ReviseModelSets(mt, mp);
      for (const Interpretation& m : mt) {
        bool witness = false;
        for (const Interpretation& n : revised) {
          if (m.SymmetricDifference(n).IsSubsetOf(vp_mask)) {
            witness = true;
            break;
          }
        }
        EXPECT_TRUE(witness) << op->name();
      }
    }
  }
}

// The concrete counterexample from the comment above, pinned as a test.
TEST(Proposition21Test, LiteralPerModelFormFailsForGlobalOperators) {
  Vocabulary vocabulary;
  const Theory t = Theory({ParseOrDie("(!p & !a) | (p & a)", &vocabulary)});
  const Formula p = ParseOrDie("p", &vocabulary);
  const Alphabet alphabet = RevisionAlphabet(t, p);
  const ModelSet revised = DalalOperator().ReviseModels(t, p, alphabet);
  ASSERT_EQ(1u, revised.size());
  // The selected model is {p, a}; the T-model {} differs from it on `a`,
  // which is outside V(P).
  Interpretation pa(alphabet.size());
  pa.Set(*alphabet.IndexOf(vocabulary.Find("p")), true);
  pa.Set(*alphabet.IndexOf(vocabulary.Find("a")), true);
  EXPECT_EQ(pa, revised[0]);
}

TEST_P(RandomRevisionTest, ModelBasedOperatorsIgnoreSyntax) {
  Rng rng(GetParam().seed + 3000);
  for (int trial = 0; trial < 10; ++trial) {
    const Formula f = DrawSatisfiable(&rng);
    const Formula p = DrawSatisfiable(&rng);
    // Two syntactically different, logically equivalent presentations.
    const Theory t1 = Theory({f});
    const Theory t2 =
        Theory({Formula::Not(Formula::Not(f)), Formula::Or(f, f)});
    for (const ModelBasedOperator* op : AllModelBasedOperators()) {
      EXPECT_EQ(op->ReviseModels(t1, p, alphabet_),
                op->ReviseModels(t2, p, alphabet_))
          << op->name();
    }
  }
}

TEST_P(RandomRevisionTest, CandidatePathMatchesPureSetSemantics) {
  // ReviseSetByFormula (the Proposition 2.1 fast path) must agree with
  // the obviously-correct pure set-level semantics.
  Rng rng(GetParam().seed + 5000);
  for (int trial = 0; trial < 12; ++trial) {
    const Formula t = DrawSatisfiable(&rng);
    const Formula p = DrawSatisfiable(&rng);
    const ModelSet mt = BruteForceModels(t, alphabet_);
    const ModelSet mp = BruteForceModels(p, alphabet_);
    for (const ModelBasedOperator* op : AllModelBasedOperators()) {
      ASSERT_EQ(op->ReviseModelSets(mt, mp),
                ReviseSetByFormula(op->id(), mt, p))
          << op->name();
    }
  }
}

TEST_P(RandomRevisionTest, ReviseFormulaMatchesReviseModels) {
  Rng rng(GetParam().seed + 4000);
  for (int trial = 0; trial < 6; ++trial) {
    const Theory t =
        Theory({DrawSatisfiable(&rng), DrawSatisfiable(&rng)});
    const Formula p = DrawSatisfiable(&rng);
    for (const RevisionOperator* op : AllOperators()) {
      const Formula formula = op->ReviseFormula(t, p);
      const ModelSet from_formula = EnumerateModels(formula, alphabet_);
      const ModelSet from_models = op->ReviseModels(t, p, alphabet_);
      EXPECT_EQ(from_models, from_formula) << op->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomRevisionTest,
    ::testing::Values(RandomRevisionCase{1, 3}, RandomRevisionCase{2, 4},
                      RandomRevisionCase{3, 5}, RandomRevisionCase{4, 6},
                      RandomRevisionCase{5, 4}, RandomRevisionCase{6, 5}));

// -------------------------------------------------------------------------
// Degenerate inputs.
// -------------------------------------------------------------------------
TEST(DegenerateTest, UnsatisfiablePGivesEmptyResult) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a", &vocabulary);
  const Formula p = ParseOrDie("b & !b", &vocabulary);
  const Alphabet alphabet = RevisionAlphabet(t, p);
  for (const ModelBasedOperator* op : AllModelBasedOperators()) {
    EXPECT_TRUE(op->ReviseModels(t, p, alphabet).empty()) << op->name();
  }
}

TEST(DegenerateTest, UnsatisfiableTGivesP) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a & !a", &vocabulary);
  const Formula p = ParseOrDie("b", &vocabulary);
  const Alphabet alphabet = RevisionAlphabet(t, p);
  const ModelSet mp = EnumerateModels(p, alphabet);
  for (const ModelBasedOperator* op : AllModelBasedOperators()) {
    EXPECT_EQ(mp, op->ReviseModels(t, p, alphabet)) << op->name();
  }
}

// -------------------------------------------------------------------------
// Entailment and model checking.
// -------------------------------------------------------------------------
TEST(EntailmentTest, QueriesWithFreshLettersAreUnconstrained) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a", &vocabulary);
  const Formula p = ParseOrDie("a", &vocabulary);
  const DalalOperator dalal;
  EXPECT_TRUE(dalal.Entails(t, p, ParseOrDie("a", &vocabulary)));
  EXPECT_FALSE(dalal.Entails(t, p, ParseOrDie("z9", &vocabulary)));
  EXPECT_TRUE(dalal.Entails(t, p, ParseOrDie("z9 | !z9", &vocabulary)));
}

TEST(EntailmentTest, IsModelMatchesReviseModels) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a & b & c", &vocabulary);
  const Formula p = ParseOrDie("!a | !b", &vocabulary);
  const Alphabet alphabet = RevisionAlphabet(t, p);
  const DalalOperator dalal;
  const ModelSet revised = dalal.ReviseModels(t, p, alphabet);
  for (uint64_t index = 0; index < (uint64_t{1} << alphabet.size());
       ++index) {
    const Interpretation m =
        Interpretation::FromIndex(alphabet.size(), index);
    EXPECT_EQ(revised.Contains(m), dalal.IsModel(t, p, m, alphabet));
  }
}

// -------------------------------------------------------------------------
// Iterated revision.
// -------------------------------------------------------------------------
TEST(IteratedTest, Section5WeberExample) {
  // T = x1&..&x5, P1 = !x1 | !x2, P2 = !x5.
  Vocabulary vocabulary;
  const Theory t =
      Theory({ParseOrDie("x1 & x2 & x3 & x4 & x5", &vocabulary)});
  const std::vector<Formula> updates = {
      ParseOrDie("!x1 | !x2", &vocabulary), ParseOrDie("!x5", &vocabulary)};
  const Alphabet alphabet = IteratedAlphabet(t, updates);
  const ModelSet result =
      IteratedReviseModels(WeberOperator(), t, updates, alphabet);
  const ModelSet expected = MakeModelSet(
      alphabet, vocabulary,
      {{"x1", "x3", "x4"}, {"x2", "x3", "x4"}, {"x3", "x4"}});
  EXPECT_EQ(expected, result);
}

TEST(IteratedTest, Section6WinslettExample) {
  // T = x1&..&x5, P = !x1: single model {x2,x3,x4,x5}.
  Vocabulary vocabulary;
  const Theory t =
      Theory({ParseOrDie("x1 & x2 & x3 & x4 & x5", &vocabulary)});
  const std::vector<Formula> updates = {ParseOrDie("!x1", &vocabulary)};
  const Alphabet alphabet = IteratedAlphabet(t, updates);
  const ModelSet result =
      IteratedReviseModels(WinslettOperator(), t, updates, alphabet);
  const ModelSet expected =
      MakeModelSet(alphabet, vocabulary, {{"x2", "x3", "x4", "x5"}});
  EXPECT_EQ(expected, result);
}

TEST(IteratedTest, SingleStepMatchesPlainRevision) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(vocabulary.Intern("w" + std::to_string(i)));
  }
  Rng rng(77);
  const Alphabet alphabet(vars);
  for (int trial = 0; trial < 10; ++trial) {
    const Theory t = Theory({RandomFormula(vars, 3, &rng)});
    const std::vector<Formula> updates = {RandomFormula(vars, 3, &rng)};
    for (const RevisionOperator* op : AllOperators()) {
      EXPECT_EQ(op->ReviseModels(t, updates[0], alphabet),
                IteratedReviseModels(*op, t, updates, alphabet))
          << op->name();
    }
  }
}

TEST(IteratedTest, DalalChainOfUnitRetractions) {
  // T = a&b&c revised by !a then !b: models should be {c} extensions at
  // distance 1 each time: after !a: {b,c}; after !b: {c}.
  Vocabulary vocabulary;
  const Theory t = Theory({ParseOrDie("a & b & c", &vocabulary)});
  const std::vector<Formula> updates = {ParseOrDie("!a", &vocabulary),
                                        ParseOrDie("!b", &vocabulary)};
  const Alphabet alphabet = IteratedAlphabet(t, updates);
  const ModelSet result =
      IteratedReviseModels(DalalOperator(), t, updates, alphabet);
  const ModelSet expected = MakeModelSet(alphabet, vocabulary, {{"c"}});
  EXPECT_EQ(expected, result);
}

TEST(IteratedTest, WidtioIteratedKeepsTheoryStructure) {
  Vocabulary vocabulary;
  const Theory t = Theory::ParseOrDie("a; b; c", &vocabulary);
  const std::vector<Formula> updates = {ParseOrDie("!a", &vocabulary),
                                        ParseOrDie("!b", &vocabulary)};
  const Alphabet alphabet = IteratedAlphabet(t, updates);
  const ModelSet result =
      IteratedReviseModels(WidtioOperator(), t, updates, alphabet);
  // {a,b,c} * !a = {b, c, !a}; * !b = {c, !a, !b}: single model {c}.
  const ModelSet expected = MakeModelSet(alphabet, vocabulary, {{"c"}});
  EXPECT_EQ(expected, result);
}

TEST(IteratedTest, IteratedFormulasAgreeWithIteratedModels) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(vocabulary.Intern("u" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const Theory t = Theory({RandomFormula(vars, 3, &rng)});
    const std::vector<Formula> updates = {RandomFormula(vars, 3, &rng),
                                          RandomFormula(vars, 3, &rng)};
    for (const RevisionOperator* op : AllOperators()) {
      const auto steps = IteratedReviseFormulas(*op, t, updates);
      ASSERT_EQ(2u, steps.size());
      EXPECT_EQ(EnumerateModels(steps.back(), alphabet),
                IteratedReviseModels(*op, t, updates, alphabet))
          << op->name();
    }
  }
}

// -------------------------------------------------------------------------
// Registry.
// -------------------------------------------------------------------------
TEST(RegistryTest, AllNineOperatorsPresent) {
  EXPECT_EQ(9u, AllOperators().size());
  EXPECT_EQ(6u, AllModelBasedOperators().size());
  std::set<std::string_view> names;
  for (const RevisionOperator* op : AllOperators()) {
    names.insert(op->name());
    EXPECT_EQ(op, OperatorById(op->id()));
  }
  EXPECT_EQ(9u, names.size());
}

TEST(RegistryTest, FormulaBasedFlag) {
  EXPECT_TRUE(OperatorById(OperatorId::kGfuv)->is_formula_based());
  EXPECT_TRUE(OperatorById(OperatorId::kWidtio)->is_formula_based());
  EXPECT_TRUE(OperatorById(OperatorId::kNebel)->is_formula_based());
  EXPECT_FALSE(OperatorById(OperatorId::kDalal)->is_formula_based());
  EXPECT_FALSE(OperatorById(OperatorId::kWinslett)->is_formula_based());
}

}  // namespace
}  // namespace revise
