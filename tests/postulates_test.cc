// Katsuno-Mendelzon postulate suite.
//
// The paper's operator classification (revision vs update, Section 1-2,
// reference [19]) rests on the KM postulates.  This suite checks them on
// random instances:
//   revision postulates R1-R6 — Dalal satisfies all six (it is a genuine
//   KM revision operator); Borgida/Satoh/Weber satisfy R1-R4;
//   update postulates U1, U2, U3, U4, U5, U8 — Winslett's PMA satisfies
//   all of them (KM 1991); Forbus satisfies the subset checked here.
// For postulates known to FAIL for particular operators (e.g. R2 for the
// update operators), the suite pins concrete counterexamples.

#include <gtest/gtest.h>

#include "hardness/random_instances.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "revision/model_based.h"
#include "revision/postulates.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace revise {
namespace {

using ::revise::testing::BruteForceModels;
using ::revise::testing::BruteForceSat;

class PostulateTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      vars_.push_back(vocabulary_.Intern("p" + std::to_string(i)));
    }
    alphabet_ = Alphabet(vars_);
  }

  Formula DrawSatisfiable(Rng* rng) {
    for (;;) {
      Formula f = RandomFormula(vars_, 4, rng);
      if (BruteForceSat(f, alphabet_)) return f;
    }
  }

  ModelSet Revise(const ModelBasedOperator& op, const Formula& t,
                  const Formula& p) {
    return op.ReviseModelSets(BruteForceModels(t, alphabet_),
                              BruteForceModels(p, alphabet_));
  }

  Vocabulary vocabulary_;
  std::vector<Var> vars_;
  Alphabet alphabet_;
};

// R1 / U1 (success): T * P |= P.
TEST_P(PostulateTest, R1SuccessHoldsForAllModelBasedOperators) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const Formula t = DrawSatisfiable(&rng);
    const Formula p = DrawSatisfiable(&rng);
    const ModelSet mp = BruteForceModels(p, alphabet_);
    for (const ModelBasedOperator* op : AllModelBasedOperators()) {
      EXPECT_TRUE(Revise(*op, t, p).IsSubsetOf(mp)) << op->name();
    }
  }
}

// R3 / U3 (consistency preservation): satisfiable T, P give satisfiable
// T * P.
TEST_P(PostulateTest, R3ConsistencyHoldsForAllModelBasedOperators) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 25; ++trial) {
    const Formula t = DrawSatisfiable(&rng);
    const Formula p = DrawSatisfiable(&rng);
    for (const ModelBasedOperator* op : AllModelBasedOperators()) {
      EXPECT_FALSE(Revise(*op, t, p).empty()) << op->name();
    }
  }
}

// R2 (vacuity): T & P satisfiable implies T * P == T & P — the defining
// property of REVISION, satisfied by Borgida/Satoh/Dalal/Weber.
TEST_P(PostulateTest, R2VacuityHoldsForRevisionOperators) {
  Rng rng(GetParam() + 200);
  for (int trial = 0; trial < 25; ++trial) {
    const Formula t = DrawSatisfiable(&rng);
    const Formula p = DrawSatisfiable(&rng);
    const Formula both = Formula::And(t, p);
    if (!BruteForceSat(both, alphabet_)) continue;
    const ModelSet expected = BruteForceModels(both, alphabet_);
    for (const OperatorId id : {OperatorId::kBorgida, OperatorId::kSatoh,
                                OperatorId::kDalal, OperatorId::kWeber}) {
      const auto* op =
          dynamic_cast<const ModelBasedOperator*>(OperatorById(id));
      ASSERT_NE(nullptr, op);
      EXPECT_EQ(expected, Revise(*op, t, p)) << op->name();
    }
  }
}

// R2 fails for the update operators: the paper's own intro example.
TEST(PostulateCounterexampleTest, R2FailsForWinslettAndForbus) {
  Vocabulary vocabulary;
  const Formula t = ParseOrDie("g | b", &vocabulary);
  const Formula p = ParseOrDie("!g", &vocabulary);
  const Alphabet alphabet(UnionOfVars(std::vector<Formula>{t, p}));
  const ModelSet both =
      EnumerateModels(Formula::And(t, p), alphabet);
  const WinslettOperator winslett;
  const ForbusOperator forbus;
  const ModelSet mt = EnumerateModels(t, alphabet);
  const ModelSet mp = EnumerateModels(p, alphabet);
  EXPECT_NE(both, winslett.ReviseModelSets(mt, mp));
  EXPECT_NE(both, forbus.ReviseModelSets(mt, mp));
}

// R4 / U4 (irrelevance of syntax, semantic version): equivalent inputs
// give identical outputs.  Trivially structural for our model-based
// implementations, but checked end-to-end through formulas.
TEST_P(PostulateTest, R4SyntaxIrrelevanceForModelBasedOperators) {
  Rng rng(GetParam() + 300);
  for (int trial = 0; trial < 10; ++trial) {
    const Formula t = DrawSatisfiable(&rng);
    const Formula p = DrawSatisfiable(&rng);
    // De Morgan-restated variants.
    const Formula t2 = Formula::Not(Formula::Not(t));
    const Formula p2 = Formula::And(p, Formula::Or(p, t));
    for (const ModelBasedOperator* op : AllModelBasedOperators()) {
      EXPECT_EQ(Revise(*op, t, p), Revise(*op, t2, p2)) << op->name();
    }
  }
}

// R5 and R6 (the "supplementary" postulates): Dalal satisfies both —
// (T*P) & Q |= T*(P & Q), and if (T*P) & Q is satisfiable then
// T*(P & Q) |= (T*P) & Q.
TEST_P(PostulateTest, R5R6HoldForDalal) {
  Rng rng(GetParam() + 400);
  const DalalOperator dalal;
  for (int trial = 0; trial < 25; ++trial) {
    const Formula t = DrawSatisfiable(&rng);
    const Formula p = DrawSatisfiable(&rng);
    const Formula q = RandomFormula(vars_, 3, &rng);
    const ModelSet t_star_p = Revise(dalal, t, p);
    const ModelSet q_models = BruteForceModels(q, alphabet_);
    const ModelSet lhs = ModelSet::Intersection(t_star_p, q_models);
    if (!BruteForceSat(Formula::And(p, q), alphabet_)) continue;
    const ModelSet rhs = Revise(dalal, t, Formula::And(p, q));
    EXPECT_TRUE(lhs.IsSubsetOf(rhs));  // R5
    if (!lhs.empty()) {
      EXPECT_TRUE(rhs.IsSubsetOf(lhs));  // R6
    }
  }
}

// U2 (update vacuity): T |= P implies T * P == T.  Holds for both update
// operators (every model of T is already a model of P at distance 0).
TEST_P(PostulateTest, U2HoldsForUpdateOperators) {
  Rng rng(GetParam() + 500);
  const WinslettOperator winslett;
  const ForbusOperator forbus;
  for (int trial = 0; trial < 25; ++trial) {
    const Formula t = DrawSatisfiable(&rng);
    // Build P entailed by T: P = T | random.
    const Formula p = Formula::Or(t, RandomFormula(vars_, 3, &rng));
    const ModelSet mt = BruteForceModels(t, alphabet_);
    EXPECT_EQ(mt, Revise(winslett, t, p));
    EXPECT_EQ(mt, Revise(forbus, t, p));
  }
}

// U8 (disjunction decomposition): (T1 | T2) * P == (T1 * P) | (T2 * P).
// This is the structural signature of pointwise update semantics.
TEST_P(PostulateTest, U8HoldsForUpdateOperators) {
  Rng rng(GetParam() + 600);
  const WinslettOperator winslett;
  const ForbusOperator forbus;
  for (int trial = 0; trial < 20; ++trial) {
    const Formula t1 = DrawSatisfiable(&rng);
    const Formula t2 = DrawSatisfiable(&rng);
    const Formula p = DrawSatisfiable(&rng);
    for (const ModelBasedOperator* op :
         std::initializer_list<const ModelBasedOperator*>{&winslett,
                                                          &forbus}) {
      const ModelSet whole = Revise(*op, Formula::Or(t1, t2), p);
      const ModelSet split = ModelSet::Union(Revise(*op, t1, p),
                                             Revise(*op, t2, p));
      EXPECT_EQ(split, whole) << op->name();
    }
  }
}

// U8 FAILS for the global operators (they compare across all models of
// T): pinned counterexample for Dalal.
TEST(PostulateCounterexampleTest, U8FailsForDalal) {
  // T1 = a & b, T2 = !a & !b, P = !a & b.  Dalal on T1|T2: global minimum
  // distance 1 (from T1), so only T1's side contributes; the split union
  // also contains T2's best model at distance 2.
  Vocabulary vocabulary;
  const Formula t1 = ParseOrDie("a & b", &vocabulary);
  const Formula t2 = ParseOrDie("!a & !b", &vocabulary);
  const Formula p = ParseOrDie("!a & b", &vocabulary);
  const Alphabet alphabet(
      UnionOfVars(std::vector<Formula>{t1, t2, p}));
  const DalalOperator dalal;
  auto revise = [&](const Formula& t) {
    return dalal.ReviseModelSets(EnumerateModels(t, alphabet),
                                 EnumerateModels(p, alphabet));
  };
  const ModelSet whole = revise(Formula::Or(t1, t2));
  const ModelSet split = ModelSet::Union(revise(t1), revise(t2));
  // Both sides reduce to the single model {b} here because P is complete
  // — so instead use the distance structure: whole == split must already
  // hold when P is complete; pick a P with two models.
  const Formula p2 = ParseOrDie("!a", &vocabulary);
  auto revise2 = [&](const Formula& t) {
    return dalal.ReviseModelSets(EnumerateModels(t, alphabet),
                                 EnumerateModels(p2, alphabet));
  };
  const ModelSet whole2 = revise2(Formula::Or(t1, t2));
  const ModelSet split2 = ModelSet::Union(revise2(t1), revise2(t2));
  EXPECT_NE(whole2, split2);
  EXPECT_TRUE(whole2.IsSubsetOf(split2));
  (void)whole;
  (void)split;
}

// U5 for Winslett's PMA: (T*P) & Q |= T*(P & Q).
TEST_P(PostulateTest, U5HoldsForWinslett) {
  Rng rng(GetParam() + 700);
  const WinslettOperator winslett;
  for (int trial = 0; trial < 20; ++trial) {
    const Formula t = DrawSatisfiable(&rng);
    const Formula p = DrawSatisfiable(&rng);
    const Formula q = RandomFormula(vars_, 3, &rng);
    if (!BruteForceSat(Formula::And(p, q), alphabet_)) continue;
    const ModelSet lhs = ModelSet::Intersection(
        Revise(winslett, t, p), BruteForceModels(q, alphabet_));
    const ModelSet rhs = Revise(winslett, t, Formula::And(p, q));
    EXPECT_TRUE(lhs.IsSubsetOf(rhs));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostulateTest, ::testing::Range(600, 605));

// ---- The library-level postulate checker (revision/postulates.h). ----

TEST(PostulateCheckerTest, DalalProfilesAsKmRevisionOperator) {
  Vocabulary vocabulary;
  const DalalOperator dalal;
  PostulateSweepOptions options;
  options.trials = 30;
  const PostulateReport report =
      CheckKmPostulates(dalal, options, &vocabulary);
  EXPECT_TRUE(report.Satisfies(KmPostulate::kR1Success));
  EXPECT_TRUE(report.Satisfies(KmPostulate::kR2Vacuity));
  EXPECT_TRUE(report.Satisfies(KmPostulate::kR3Consistency));
  EXPECT_TRUE(report.Satisfies(KmPostulate::kR4Syntax));
  EXPECT_TRUE(report.Satisfies(KmPostulate::kR5Conjunction));
  EXPECT_TRUE(report.Satisfies(KmPostulate::kR6Conjunction));
  EXPECT_FALSE(report.ToString(vocabulary).empty());
}

TEST(PostulateCheckerTest, WinslettProfilesAsKmUpdateOperator) {
  Vocabulary vocabulary;
  const WinslettOperator winslett;
  PostulateSweepOptions options;
  options.trials = 30;
  const PostulateReport report =
      CheckKmPostulates(winslett, options, &vocabulary);
  EXPECT_TRUE(report.Satisfies(KmPostulate::kR1Success));
  EXPECT_TRUE(report.Satisfies(KmPostulate::kR3Consistency));
  EXPECT_TRUE(report.Satisfies(KmPostulate::kU2UpdateVacuity));
  EXPECT_TRUE(report.Satisfies(KmPostulate::kU8Disjunction));
  // R2 must show violations (it is an update, not a revision, operator)
  // and the report must carry a witness.
  EXPECT_FALSE(report.Satisfies(KmPostulate::kR2Vacuity));
  for (size_t i = 0; i < report.postulates.size(); ++i) {
    if (report.postulates[i] == KmPostulate::kR2Vacuity) {
      EXPECT_TRUE(report.witnesses[i].has_value());
    }
  }
}

TEST(PostulateCheckerTest, SweepIsDeterministicForFixedSeed) {
  Vocabulary vocabulary;
  const WeberOperator weber;
  PostulateSweepOptions options;
  options.trials = 10;
  options.seed = 99;
  const PostulateReport a = CheckKmPostulates(weber, options, &vocabulary);
  const PostulateReport b = CheckKmPostulates(weber, options, &vocabulary);
  EXPECT_EQ(a.violated, b.violated);
  EXPECT_EQ(a.checked, b.checked);
}

}  // namespace
}  // namespace revise
