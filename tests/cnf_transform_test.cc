#include <gtest/gtest.h>

#include "hardness/random_instances.h"
#include "logic/cnf_transform.h"
#include "logic/transform.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "solve/services.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace revise {
namespace {

using ::revise::testing::BruteForceModels;

TEST(IsCnfTest, Recognition) {
  Vocabulary vocabulary;
  EXPECT_TRUE(IsCnf(ParseOrDie("a", &vocabulary)));
  EXPECT_TRUE(IsCnf(ParseOrDie("!a", &vocabulary)));
  EXPECT_TRUE(IsCnf(ParseOrDie("a | !b", &vocabulary)));
  EXPECT_TRUE(IsCnf(ParseOrDie("(a | b) & (!a | c) & b", &vocabulary)));
  EXPECT_TRUE(IsCnf(Formula::True()));
  EXPECT_FALSE(IsCnf(ParseOrDie("a & b | c", &vocabulary)));
  EXPECT_FALSE(IsCnf(ParseOrDie("!(a | b)", &vocabulary)));
  EXPECT_FALSE(IsCnf(ParseOrDie("a -> b", &vocabulary)));
}

TEST(IsCnfTest, ClauseCount) {
  Vocabulary vocabulary;
  EXPECT_EQ(0u, CnfClauseCount(Formula::True()));
  EXPECT_EQ(1u, CnfClauseCount(ParseOrDie("a | b", &vocabulary)));
  EXPECT_EQ(3u,
            CnfClauseCount(ParseOrDie("(a | b) & c & (!a | !b)",
                                      &vocabulary)));
}

class CnfTransformRandomTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      vars_.push_back(vocabulary_.Intern("cf" + std::to_string(i)));
    }
    alphabet_ = Alphabet(vars_);
  }

  Vocabulary vocabulary_;
  std::vector<Var> vars_;
  Alphabet alphabet_;
};

TEST_P(CnfTransformRandomTest, NaiveCnfIsLogicallyEquivalent) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const Formula f = RandomFormula(vars_, 4, &rng);
    const StatusOr<Formula> cnf = NaiveCnf(f, 1u << 20);
    if (!cnf.ok()) {
      // Distribution legitimately explodes past the budget on some draws
      // (the very phenomenon the API surfaces); skip those.
      EXPECT_EQ(StatusCode::kResourceExhausted, cnf.status().code());
      continue;
    }
    EXPECT_TRUE(IsCnf(*cnf)) << ToString(*cnf, vocabulary_);
    EXPECT_EQ(BruteForceModels(f, alphabet_),
              BruteForceModels(*cnf, alphabet_));
  }
}

TEST_P(CnfTransformRandomTest, TseitinCnfIsQueryEquivalent) {
  Rng rng(GetParam() + 10);
  for (int trial = 0; trial < 25; ++trial) {
    const Formula f = RandomFormula(vars_, 4, &rng);
    const Formula cnf = TseitinCnf(f, &vocabulary_);
    EXPECT_TRUE(IsCnf(cnf));
    // Query equivalent over V(f): identical projections.
    EXPECT_TRUE(QueryEquivalent(cnf, f, alphabet_));
  }
}

TEST_P(CnfTransformRandomTest, TseitinSizeIsLinear) {
  Rng rng(GetParam() + 20);
  for (int trial = 0; trial < 10; ++trial) {
    const Formula f = RandomFormula(vars_, 6, &rng);
    const Formula cnf = TseitinCnf(f, &vocabulary_);
    // Each connective contributes O(arity) occurrences: linear overall.
    EXPECT_LE(cnf.VarOccurrences(), 8 * f.TreeSize());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CnfTransformRandomTest,
                         ::testing::Range(800, 804));

TEST(NaiveCnfTest, ExplodesOnXorChainAndReportsBudget) {
  // x0 ^ x1 ^ ... ^ x_{n-1} has 2^{n-1} clauses in CNF.
  Vocabulary vocabulary;
  Formula chain = Formula::False();
  for (int i = 0; i < 12; ++i) {
    chain = Formula::Xor(
        chain, Formula::Variable(vocabulary.Intern("p" + std::to_string(i))));
  }
  const StatusOr<Formula> limited = NaiveCnf(chain, 1000);
  EXPECT_FALSE(limited.ok());
  EXPECT_EQ(StatusCode::kResourceExhausted, limited.status().code());
  // A Tseitin conversion of the same formula stays small.
  const Formula tseitin = TseitinCnf(chain, &vocabulary);
  EXPECT_LT(tseitin.VarOccurrences(), 1000u);
}

TEST(NaiveCnfTest, SmallXorExactClauseCount) {
  Vocabulary vocabulary;
  const Formula f = ParseOrDie("a ^ b ^ c", &vocabulary);
  const StatusOr<Formula> cnf = NaiveCnf(f, 1u << 16);
  ASSERT_TRUE(cnf.ok());
  // Minimal CNF of 3-xor has 4 clauses; distribution may give more but
  // must be equivalent.
  EXPECT_GE(CnfClauseCount(*cnf), 4u);
  EXPECT_TRUE(AreEquivalent(f, *cnf));
}

TEST(NaiveCnfTest, Constants) {
  const StatusOr<Formula> t = NaiveCnf(Formula::True(), 10);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->IsTrue());
  const StatusOr<Formula> f = NaiveCnf(Formula::False(), 10);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->IsFalse());
}

}  // namespace
}  // namespace revise
