// Tests for the differential fuzzing subsystem (src/fuzz/): generator
// determinism and coverage, oracle agreement at HEAD, the delta-debugging
// shrinker on planted failures, corpus (de)serialization, and the replay
// of the committed regression corpus.

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "fuzz/oracles.h"
#include "fuzz/scenario.h"
#include "fuzz/shrink.h"

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "logic/printer.h"
#include "obs/metrics.h"

namespace revise::fuzz {
namespace {

std::filesystem::path CommittedCorpusDir() {
  return std::filesystem::path(__FILE__).parent_path() / "corpus";
}

uint64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name)->Value();
}

// ---- generator -----------------------------------------------------------

TEST(GeneratorTest, SameSeedReproducesTheSameScenario) {
  for (uint64_t seed : {1u, 7u, 99u, 1234u}) {
    const Scenario a = GenerateScenario(seed);
    const Scenario b = GenerateScenario(seed);
    EXPECT_EQ(a.ToString(), b.ToString()) << "seed " << seed;
    EXPECT_EQ(a.shape, b.shape);
  }
}

TEST(GeneratorTest, DifferentSeedsDiverge) {
  int distinct = 0;
  const std::string base = GenerateScenario(1).ToString();
  for (uint64_t seed = 2; seed < 12; ++seed) {
    if (GenerateScenario(seed).ToString() != base) ++distinct;
  }
  EXPECT_GE(distinct, 9);
}

TEST(GeneratorTest, AllShapesAppearWithinTwoHundredSeeds) {
  std::set<Shape> seen;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    seen.insert(GenerateScenario(seed).shape);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(GeneratorTest, GeneratedFormulasStayWithinTheParserDepthLimit) {
  // The deep-nesting shape must stress the printer/parser without
  // tripping the kMaxParseDepth guard, or the parser-roundtrip oracle
  // would report spurious failures.
  for (uint64_t seed = 0; seed < 300; ++seed) {
    const Scenario s = GenerateScenario(seed);
    if (s.shape != Shape::kDeepNesting) continue;
    const std::string text = ToString(s.t[0], *s.vocabulary);
    StatusOr<Formula> parsed = Parse(text, s.vocabulary.get());
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " for seed " << seed;
  }
}

// ---- oracles -------------------------------------------------------------

TEST(OracleTest, RegistryIsConsistent) {
  ASSERT_FALSE(AllOracles().empty());
  for (const Oracle& oracle : AllOracles()) {
    EXPECT_EQ(FindOracle(oracle.name), &oracle);
  }
  EXPECT_EQ(FindOracle("no-such-oracle"), nullptr);
}

TEST(OracleTest, HeadImplementationSurvivesAFuzzBatch) {
  FuzzOptions options;
  options.seed = 424242;
  options.runs = 150;
  const FuzzReport report = Fuzz(options);
  EXPECT_EQ(report.executions, 150u);
  EXPECT_EQ(report.mismatches, 0u);
  for (const FuzzFailure& failure : report.failures) {
    ADD_FAILURE() << failure.oracle << ": " << failure.detail << "\n"
                  << failure.scenario.ToString();
  }
}

TEST(OracleTest, FuzzPublishesExecutionCounters) {
  const uint64_t before = CounterValue("fuzz.executions");
  FuzzOptions options;
  options.seed = 7;
  options.runs = 5;
  const FuzzReport report = Fuzz(options);
  EXPECT_EQ(report.executions, 5u);
  EXPECT_EQ(CounterValue("fuzz.executions"), before + 5);
}

// ---- shrinker ------------------------------------------------------------

TEST(ShrinkTest, FormulaReductionsAreStrictlySmallerOrConstants) {
  Vocabulary vocabulary;
  const Formula f =
      ParseOrDie("(a & b & c) | !(a -> (b <-> c))", &vocabulary);
  const std::vector<Formula> reductions = FormulaReductions(f);
  ASSERT_FALSE(reductions.empty());
  for (const Formula& r : reductions) {
    EXPECT_LE(r.TreeSize(), f.TreeSize());
  }
  // Child promotion is among the candidates.
  const bool has_child = std::any_of(
      reductions.begin(), reductions.end(),
      [&](const Formula& r) { return r.StructurallyEqual(f.child(0)); });
  EXPECT_TRUE(has_child);
}

TEST(ShrinkTest, PlantedFailureShrinksToALocalMinimum) {
  // Plant a "bug" that fires whenever P mentions v0 while T is nonempty;
  // the shrinker must strip everything else away.
  Scenario big;
  big.vocabulary = std::make_shared<Vocabulary>();
  const Var v0 = big.vocabulary->Intern("v0");
  big.t = Theory::ParseOrDie("(v0 & v1) | (v2 <-> v3); v1 -> (v2 ^ v0)",
                             big.vocabulary.get());
  big.p = ParseOrDie("(v0 | v1) & (v2 -> v3) & !(v1 ^ v3)",
                     big.vocabulary.get());
  big.q = ParseOrDie("v1 <-> (v2 | v0)", big.vocabulary.get());
  const auto mentions_v0 = [v0](const Formula& f) {
    const std::vector<Var> vars = f.Vars();
    return std::find(vars.begin(), vars.end(), v0) != vars.end();
  };
  const FailurePredicate planted = [&](const Scenario& s) {
    return !s.t.empty() && mentions_v0(s.p);
  };
  ASSERT_TRUE(planted(big));

  const uint64_t steps_before = CounterValue("fuzz.shrink_steps");
  const ShrinkResult reduced = ShrinkScenario(big, planted);
  EXPECT_TRUE(planted(reduced.scenario));
  EXPECT_GT(reduced.steps, 0);
  EXPECT_LT(reduced.scenario.TotalTreeSize(), big.TotalTreeSize());
  EXPECT_EQ(CounterValue("fuzz.shrink_steps"),
            steps_before + static_cast<uint64_t>(reduced.steps));
  // The local minimum under this predicate: a one-element theory reduced
  // to a constant, P reduced to the literal v0, Q reduced to a constant.
  EXPECT_EQ(reduced.scenario.TotalTreeSize(), 3u);
  EXPECT_TRUE(reduced.scenario.p.StructurallyEqual(Formula::Variable(v0)));
  EXPECT_EQ(reduced.scenario.t.size(), 1u);
}

TEST(ShrinkTest, PassingScenarioIsReturnedUntouched) {
  const Scenario s = GenerateScenario(5);
  const ShrinkResult result =
      ShrinkScenario(s, [](const Scenario&) { return false; });
  EXPECT_EQ(result.steps, 0);
  EXPECT_EQ(result.scenario.ToString(), s.ToString());
}

// ---- corpus --------------------------------------------------------------

TEST(CorpusTest, FormatParseRoundTrip) {
  CorpusEntry entry;
  entry.name = "round-trip";
  entry.oracle = "postulates";
  entry.expect = "ok";
  entry.seed = 99;
  entry.theory = "a -> b; !c";
  entry.p = "a & c";
  entry.q = "b";
  const StatusOr<CorpusEntry> parsed = ParseEntry(FormatEntry(entry));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().name, entry.name);
  EXPECT_EQ(parsed.value().oracle, entry.oracle);
  EXPECT_EQ(parsed.value().expect, entry.expect);
  EXPECT_EQ(parsed.value().seed, entry.seed);
  EXPECT_EQ(parsed.value().theory, entry.theory);
  EXPECT_EQ(parsed.value().p, entry.p);
  EXPECT_EQ(parsed.value().q, entry.q);
}

TEST(CorpusTest, ParseEntryRejectsMalformedInput) {
  EXPECT_FALSE(ParseEntry("name: x\np: a\n").ok()) << "missing header";
  const std::string header = std::string(kCorpusHeader) + "\n";
  EXPECT_FALSE(ParseEntry(header + "p: a\n").ok()) << "missing name";
  EXPECT_FALSE(ParseEntry(header + "name: x\n").ok()) << "missing p";
  EXPECT_FALSE(ParseEntry(header + "name: x\np: a\nwat: 1\n").ok())
      << "unknown key";
  EXPECT_FALSE(
      ParseEntry(header + "name: x\nname: y\np: a\n").ok())
      << "duplicate key";
  EXPECT_FALSE(
      ParseEntry(header + "name: x\np: a\nexpect: maybe\n").ok())
      << "bad expect";
  EXPECT_FALSE(
      ParseEntry(header + "name: x\np: a\nseed: twelve\n").ok())
      << "bad seed";
}

TEST(CorpusTest, ScenarioEntryRoundTripPreservesSemantics) {
  const Scenario original = GenerateScenario(17);
  const CorpusEntry entry =
      EntryFromScenario(original, "seed17", "operator-reference");
  const StatusOr<Scenario> restored = ScenarioFromEntry(entry);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value().t.size(), original.t.size());
  // Formula text is rendered with the same printer both ways.
  EXPECT_EQ(ToString(restored.value().p, *restored.value().vocabulary),
            ToString(original.p, *original.vocabulary));
}

TEST(CorpusTest, CommittedCorpusReplaysClean) {
  const std::string dir = CommittedCorpusDir().string();
  const StatusOr<FuzzReport> report = ReplayCorpus(dir);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report.value().executions, 6u);
  EXPECT_EQ(report.value().mismatches, 0u);
  for (const FuzzFailure& failure : report.value().failures) {
    ADD_FAILURE() << failure.oracle << ": " << failure.detail;
  }
}

TEST(CorpusTest, ParseErrorEntriesDemandAParserRejection) {
  // The committed depth-overflow repro must keep failing to parse; if the
  // guard regresses (or the limit is raised past the repro) the replay
  // flags it.
  const StatusOr<CorpusEntry> entry = LoadEntry(
      (CommittedCorpusDir() / "parser-depth-overflow.corpus").string());
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_EQ(entry.value().expect, "parse-error");
  const StatusOr<Scenario> scenario = ScenarioFromEntry(entry.value());
  ASSERT_FALSE(scenario.ok());
  EXPECT_EQ(scenario.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace revise::fuzz
