#include <gtest/gtest.h>

#include "compact/single_revision.h"
#include "hardness/random_instances.h"
#include "logic/cnf_transform.h"
#include "logic/evaluate.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "revision/operator.h"
#include "solve/qbf.h"
#include "solve/services.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace revise {
namespace {

using ::revise::testing::BruteForceSat;

// Brute-force ∃X ∀Y. phi.
bool BruteForceExistsForall(const std::vector<Var>& exists_vars,
                            const std::vector<Var>& forall_vars,
                            const Formula& matrix) {
  std::vector<Var> all = exists_vars;
  all.insert(all.end(), forall_vars.begin(), forall_vars.end());
  const Alphabet alphabet(all);
  const size_t ne = exists_vars.size();
  const size_t nf = forall_vars.size();
  for (uint64_t xv = 0; xv < (uint64_t{1} << ne); ++xv) {
    bool all_y = true;
    for (uint64_t yv = 0; yv < (uint64_t{1} << nf); ++yv) {
      Interpretation m(alphabet.size());
      for (size_t i = 0; i < ne; ++i) {
        if ((xv >> i) & 1) m.Set(*alphabet.IndexOf(exists_vars[i]), true);
      }
      for (size_t i = 0; i < nf; ++i) {
        if ((yv >> i) & 1) m.Set(*alphabet.IndexOf(forall_vars[i]), true);
      }
      if (!Evaluate(matrix, alphabet, m)) {
        all_y = false;
        break;
      }
    }
    if (all_y) return true;
  }
  return false;
}

TEST(QbfTest, HandCases) {
  Vocabulary vocabulary;
  const Var x = vocabulary.Intern("x");
  const Var y = vocabulary.Intern("y");
  // ∃x ∀y. x | y  — x = true works.
  EXPECT_TRUE(ExistsForallSat({x}, {y},
                              ParseOrDie("x | y", &vocabulary))
                  .satisfiable);
  // ∃x ∀y. x ^ y  — no x works.
  EXPECT_FALSE(
      ExistsForallSat({x}, {y}, ParseOrDie("x ^ y", &vocabulary))
          .satisfiable);
  // ∃x ∀y. x  — trivially witness x = true.
  const auto result =
      ExistsForallSat({x}, {y}, ParseOrDie("x", &vocabulary));
  EXPECT_TRUE(result.satisfiable);
  EXPECT_TRUE(result.witness.Get(0));
  // Empty universal block degenerates to SAT.
  EXPECT_TRUE(
      ExistsForallSat({x}, {}, ParseOrDie("x", &vocabulary)).satisfiable);
  EXPECT_FALSE(ExistsForallSat({x}, {},
                               ParseOrDie("x & !x", &vocabulary))
                   .satisfiable);
}

class QbfRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(QbfRandomTest, AgreesWithBruteForce) {
  Vocabulary vocabulary;
  std::vector<Var> xs;
  std::vector<Var> ys;
  for (int i = 0; i < 3; ++i) {
    xs.push_back(vocabulary.Intern("qx" + std::to_string(i)));
    ys.push_back(vocabulary.Intern("qy" + std::to_string(i)));
  }
  std::vector<Var> all = xs;
  all.insert(all.end(), ys.begin(), ys.end());
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const Formula matrix = RandomFormula(all, 4, &rng);
    const bool expected = BruteForceExistsForall(xs, ys, matrix);
    const auto result = ExistsForallSat(xs, ys, matrix);
    ASSERT_EQ(expected, result.satisfiable)
        << ToString(matrix, vocabulary);
    if (result.satisfiable) {
      // The witness must be genuine: matrix holds for all y.
      const Alphabet alphabet(all);
      for (uint64_t yv = 0; yv < 8; ++yv) {
        Interpretation m(alphabet.size());
        const Alphabet ex_alphabet(xs);
        for (size_t i = 0; i < xs.size(); ++i) {
          if (result.witness.Get(*ex_alphabet.IndexOf(xs[i]))) {
            m.Set(*alphabet.IndexOf(xs[i]), true);
          }
        }
        for (size_t i = 0; i < ys.size(); ++i) {
          if ((yv >> i) & 1) m.Set(*alphabet.IndexOf(ys[i]), true);
        }
        ASSERT_TRUE(Evaluate(matrix, alphabet, m));
      }
    }
  }
}

TEST_P(QbfRandomTest, QueryEquivalenceAgreesWithEnumeration) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(vocabulary.Intern("qe" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(GetParam() + 500);
  for (int trial = 0; trial < 15; ++trial) {
    const Formula f = RandomFormula(vars, 4, &rng);
    const Formula g = RandomFormula(vars, 4, &rng);
    // Tseitin versions introduce private auxiliary letters.
    const Formula tf = TseitinCnf(f, &vocabulary);
    const Formula tg = TseitinCnf(g, &vocabulary);
    ASSERT_EQ(QueryEquivalent(tf, tg, alphabet),
              QueryEquivalentQbf(tf, tg, alphabet));
    // Each Tseitin version is query-equivalent to its source.
    ASSERT_TRUE(QueryEquivalentQbf(tf, f, alphabet));
    ASSERT_TRUE(QueryEquivalentQbf(tg, g, alphabet));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QbfRandomTest, ::testing::Range(900, 904));

// The QBF route certifies Theorem 3.4's query equivalence on instances
// and validates DalalCompact without model enumeration.
TEST(QbfTest, CertifiesDalalCompactQueryEquivalence) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 5; ++i) {
    vars.push_back(vocabulary.Intern("dc" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(41);
  const DalalOperator dalal;
  for (int trial = 0; trial < 6; ++trial) {
    Formula t = RandomFormula(vars, 3, &rng);
    Formula p = RandomFormula(vars, 3, &rng);
    if (!BruteForceSat(t, alphabet) || !BruteForceSat(p, alphabet)) {
      continue;
    }
    const Formula compact = DalalCompact(t, p, &vocabulary);
    const Formula reference = dalal.ReviseFormula(Theory({t}), p);
    EXPECT_TRUE(QueryEquivalentQbf(compact, reference, alphabet));
  }
}

}  // namespace
}  // namespace revise
