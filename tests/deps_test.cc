// End-to-end tests for tools/revise_deps: each fixture tree under
// tools/deps_fixtures/ encodes exactly one architecture defect (or none),
// and the checker's exit status, finding text, and graph dumps are the
// contract under test.  The binary and fixture paths are injected by
// tests/CMakeLists.txt as REVISE_DEPS_BINARY / REVISE_DEPS_FIXTURES.
//
// The companion configure-time check is the thread-safety negative
// compile probe (cmake/thread_safety_probe.cc): under clang an unguarded
// access to a REVISE_GUARDED_BY member must fail the build, which CMake
// enforces before any test runs.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout and stderr interleaved
};

RunResult RunDeps(const std::string& args) {
  const std::string command =
      std::string(REVISE_DEPS_BINARY) + " " + args + " 2>&1";
  RunResult result;
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string Fixture(const std::string& tree) {
  return std::string(REVISE_DEPS_FIXTURES) + "/" + tree;
}

std::string TreeArgs(const std::string& tree, const std::string& layers) {
  return "--root=" + Fixture(tree) + " --layers=" + Fixture(tree) + "/" +
         layers;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ReviseDepsTest, GoodTreeIsClean) {
  const RunResult result = RunDeps(TreeArgs("tree_good", "layers.txt"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("0 findings"), std::string::npos)
      << result.output;
}

TEST(ReviseDepsTest, CycleIsReportedWithFullPath) {
  const RunResult result = RunDeps(TreeArgs("tree_cycle", "layers.txt"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find(
                "include cycle: src/core/a.h -> src/core/b.h -> "
                "src/core/a.h"),
            std::string::npos)
      << result.output;
}

TEST(ReviseDepsTest, EdgeOutsideManifestIsForbidden) {
  const RunResult result = RunDeps(TreeArgs("tree_forbidden", "layers.txt"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("forbidden edge util -> core"),
            std::string::npos)
      << result.output;
  // The report names the offending include site.
  EXPECT_NE(result.output.find("src/util/helper.h:"), std::string::npos)
      << result.output;
}

TEST(ReviseDepsTest, UnreferencedIncludeIsFlagged) {
  const RunResult result = RunDeps(TreeArgs("tree_unused", "layers.txt"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find(
                "src/core/engine.cc:3: unused include \"src/util/bits.h\""),
            std::string::npos)
      << result.output;
}

TEST(ReviseDepsTest, StaleManifestEdgeFailsCleanTree) {
  const RunResult result =
      RunDeps(TreeArgs("tree_good", "layers_stale.txt"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("stale layer edge obs -> util"),
            std::string::npos)
      << result.output;
}

TEST(ReviseDepsTest, DotAndJsonDumpTheModuleGraph) {
  const std::string dot = testing::TempDir() + "/revise_deps_test.dot";
  const std::string json = testing::TempDir() + "/revise_deps_test.json";
  const RunResult result = RunDeps(TreeArgs("tree_good", "layers.txt") +
                                   " --dot=" + dot + " --json=" + json);
  ASSERT_EQ(result.exit_code, 0) << result.output;

  const std::string dot_text = ReadFileOrEmpty(dot);
  EXPECT_NE(dot_text.find("digraph revise_deps"), std::string::npos)
      << dot_text;
  EXPECT_NE(dot_text.find("\"core\" -> \"util\""), std::string::npos)
      << dot_text;

  const std::string json_text = ReadFileOrEmpty(json);
  EXPECT_NE(json_text.find("\"from\": \"core\", \"to\": \"util\""),
            std::string::npos)
      << json_text;
  EXPECT_NE(json_text.find("\"modules\": [\"core\", \"util\"]"),
            std::string::npos)
      << json_text;
  std::remove(dot.c_str());
  std::remove(json.c_str());
}

TEST(ReviseDepsTest, MissingRootIsUsageError) {
  const RunResult result = RunDeps("--root=" + Fixture("no_such_tree"));
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

}  // namespace
