#include <gtest/gtest.h>

#include "hardness/random_instances.h"
#include "logic/parser.h"
#include "minimize/quine_mccluskey.h"
#include "solve/services.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace revise {
namespace {

using ::revise::testing::BruteForceModels;

TEST(ImplicantTest, CoversAndLiterals) {
  // x1=1, x3=0 (care bits 0 and 2).
  const Implicant imp{0b001, 0b101};
  EXPECT_TRUE(imp.Covers(0b001));
  EXPECT_TRUE(imp.Covers(0b011));
  EXPECT_FALSE(imp.Covers(0b000));
  EXPECT_FALSE(imp.Covers(0b101));
  EXPECT_EQ(2, imp.NumLiterals());
}

TEST(PrimeImplicantTest, ClassicTextbookExample) {
  // f(x2,x1,x0) with on-set {0,1,2,5,6,7}: primes are
  // x1'x0' (0,1... ) — just validate count and coverage soundness.
  const std::vector<uint32_t> on = {0, 1, 2, 5, 6, 7};
  const auto primes = PrimeImplicants(on, 3);
  for (const Implicant& p : primes) {
    // Every prime must cover only on-set minterms.
    for (uint32_t v = 0; v < 8; ++v) {
      if (p.Covers(v)) {
        EXPECT_TRUE(std::find(on.begin(), on.end(), v) != on.end());
      }
    }
  }
  // Every on-set minterm must be covered by some prime.
  for (const uint32_t v : on) {
    bool covered = false;
    for (const Implicant& p : primes) covered = covered || p.Covers(v);
    EXPECT_TRUE(covered);
  }
}

TEST(MinimizeDnfTest, ConstantFunctions) {
  EXPECT_EQ(0u, MinimizeDnf({}, 3).literal_count);
  EXPECT_TRUE(MinimizeDnf({}, 3).terms.empty());
  std::vector<uint32_t> all;
  for (uint32_t v = 0; v < 8; ++v) all.push_back(v);
  const auto result = MinimizeDnf(all, 3);
  ASSERT_EQ(1u, result.terms.size());
  EXPECT_EQ(0u, result.literal_count);  // the empty (true) term
}

TEST(MinimizeDnfTest, XorNeedsExponentialTerms) {
  // x0 ^ x1 ^ x2: minimal DNF has 4 terms of 3 literals = 12 literals.
  std::vector<uint32_t> on;
  for (uint32_t v = 0; v < 8; ++v) {
    if (std::popcount(v) % 2 == 1) on.push_back(v);
  }
  const auto result = MinimizeDnf(on, 3);
  EXPECT_EQ(4u, result.terms.size());
  EXPECT_EQ(12u, result.literal_count);
}

TEST(MinimizeDnfTest, SingleCube) {
  // f = x0 & !x2 over 3 vars: on-set {1, 3}: single cube, 2 literals.
  const auto result = MinimizeDnf({0b001, 0b011}, 3);
  EXPECT_EQ(1u, result.terms.size());
  EXPECT_EQ(2u, result.literal_count);
}

class RandomMinimizeTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomMinimizeTest, MinimizedDnfAndCnfAreEquivalentToInput) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(vocabulary.Intern("m" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const Formula f = RandomFormula(vars, 4, &rng);
    const ModelSet models = BruteForceModels(f, alphabet);
    const auto dnf = MinimizeDnf(models);
    const Formula dnf_formula = DnfToFormula(dnf, alphabet);
    EXPECT_EQ(models, BruteForceModels(dnf_formula, alphabet));
    const auto cnf = MinimizeCnf(models);
    const Formula cnf_formula = CnfToFormula(cnf, alphabet);
    EXPECT_EQ(models, BruteForceModels(cnf_formula, alphabet));
    // The two-level proxy never exceeds the canonical DNF size.
    EXPECT_LE(MinimalTwoLevelSize(models),
              models.size() * alphabet.size());
  }
}

TEST_P(RandomMinimizeTest, CoverIsOptimalVersusBruteForce) {
  // For tiny functions, compare against brute-force search over all
  // subsets of the primes.
  Rng rng(GetParam() + 10);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint32_t> on;
    for (uint32_t v = 0; v < 8; ++v) {
      if (rng.Chance(0.4)) on.push_back(v);
    }
    if (on.empty()) continue;
    const auto primes = PrimeImplicants(on, 3);
    ASSERT_LE(primes.size(), 16u);
    uint64_t best = ~uint64_t{0};
    for (uint64_t mask = 0; mask < (uint64_t{1} << primes.size());
         ++mask) {
      bool all_covered = true;
      uint64_t cost = 0;
      for (const uint32_t v : on) {
        bool covered = false;
        for (size_t p = 0; p < primes.size(); ++p) {
          if ((mask >> p) & 1 && primes[p].Covers(v)) covered = true;
        }
        if (!covered) {
          all_covered = false;
          break;
        }
      }
      if (!all_covered) continue;
      for (size_t p = 0; p < primes.size(); ++p) {
        if ((mask >> p) & 1) cost += primes[p].NumLiterals();
      }
      best = std::min(best, cost);
    }
    EXPECT_EQ(best, MinimizeDnf(on, 3).literal_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMinimizeTest,
                         ::testing::Range(500, 505));

}  // namespace
}  // namespace revise
