// Tests for the background observability services (obs/watchdog.h):
// the periodic metrics dumper's atomic rotation and the stall
// watchdog's detection, dedup, and stall_<pid>.json artifact.  Each
// test runs in its own process (gtest_discover_tests), so setenv and
// the process-wide registry counters do not leak across tests.

#include "obs/watchdog.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "util/status.h"

namespace revise::obs {
namespace {

void SleepSeconds(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  return text;
}

uint64_t DumpCount() {
  return Registry::Global().GetCounter("obs.metrics_dumps")->Value();
}

uint64_t StallCount() {
  return Registry::Global().GetCounter("obs.watchdog_stalls")->Value();
}

// --- MetricsDumper -----------------------------------------------------

TEST(MetricsDumperTest, WritesParseableDumpImmediately) {
  const std::string path = testing::TempDir() + "revise_dump_test.om";
  std::remove(path.c_str());
  const uint64_t dumps_before = DumpCount();

  MetricsDumperOptions options;
  options.path = path;
  options.interval_s = 60.0;  // only the start-up dump fires in-test
  StatusOr<std::unique_ptr<MetricsDumper>> dumper =
      MetricsDumper::Start(options);
  ASSERT_TRUE(dumper.ok()) << dumper.status().ToString();
  EXPECT_GE(DumpCount(), dumps_before + 1);

  const std::string text = ReadFileOrEmpty(path);
  ASSERT_FALSE(text.empty());
  StatusOr<ParsedMetrics> parsed = ParseOpenMetrics(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->saw_eof);
  EXPECT_EQ(parsed->infos.count("revise_build"), 1u);
  // The rotation leaves no torn temp file behind.
  EXPECT_TRUE(ReadFileOrEmpty(path + ".tmp").empty());
}

TEST(MetricsDumperTest, RotatesOnIntervalAndOnStop) {
  const std::string path = testing::TempDir() + "revise_rotate_test.om";
  MetricsDumperOptions options;
  options.path = path;
  options.interval_s = 0.02;
  StatusOr<std::unique_ptr<MetricsDumper>> dumper =
      MetricsDumper::Start(options);
  ASSERT_TRUE(dumper.ok()) << dumper.status().ToString();
  const uint64_t dumps_after_start = DumpCount();
  SleepSeconds(0.2);
  EXPECT_GT(DumpCount(), dumps_after_start) << "no interval rotation fired";

  // Stop writes a final rotation, and the latest file still parses.
  Registry::Global().GetCounter("watchdog.test_marker")->Increment();
  (*dumper)->Stop();
  const uint64_t dumps_after_stop = DumpCount();
  StatusOr<ParsedMetrics> parsed = ParseOpenMetrics(ReadFileOrEmpty(path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GE(parsed->counters.at("watchdog_test_marker"), 1u);
  // Idempotent: a second Stop neither rotates nor deadlocks.
  (*dumper)->Stop();
  EXPECT_EQ(DumpCount(), dumps_after_stop);
}

TEST(MetricsDumperTest, UnwritablePathFailsAtStart) {
  MetricsDumperOptions options;
  options.path = "/nonexistent_revise_dir/metrics.om";
  StatusOr<std::unique_ptr<MetricsDumper>> dumper =
      MetricsDumper::Start(options);
  EXPECT_FALSE(dumper.ok());
}

TEST(MetricsDumperTest, RejectsNonPositiveInterval) {
  MetricsDumperOptions options;
  options.path = testing::TempDir() + "revise_interval_test.om";
  options.interval_s = 0.0;
  EXPECT_FALSE(MetricsDumper::Start(options).ok());
}

TEST(MetricsDumperTest, EnvActivationParsesPathAndInterval) {
  const std::string path = testing::TempDir() + "revise_env_dump.om";
  const std::string spec = path + ":0.5";
  ASSERT_EQ(setenv("REVISE_METRICS_DUMP", spec.c_str(), 1), 0);
  MetricsDumper* dumper = StartMetricsDumperFromEnv();
  ASSERT_NE(dumper, nullptr);
  // Start-once: a second call returns the running instance.
  EXPECT_EQ(StartMetricsDumperFromEnv(), dumper);
  EXPECT_FALSE(ReadFileOrEmpty(path).empty());
  StopGlobalMetricsDumper();
}

TEST(MetricsDumperTest, EnvActivationRejectsMalformedSpecs) {
  ASSERT_EQ(setenv("REVISE_METRICS_DUMP", "no-interval", 1), 0);
  EXPECT_EQ(StartMetricsDumperFromEnv(), nullptr);
  ASSERT_EQ(setenv("REVISE_METRICS_DUMP", "/tmp/x.om:zero", 1), 0);
  EXPECT_EQ(StartMetricsDumperFromEnv(), nullptr);
  ASSERT_EQ(setenv("REVISE_METRICS_DUMP", "/tmp/x.om:-1", 1), 0);
  EXPECT_EQ(StartMetricsDumperFromEnv(), nullptr);
}

// --- StallWatchdog -----------------------------------------------------

TEST(StallWatchdogTest, DetectsStallOnceAndWritesDump) {
  ASSERT_EQ(setenv("REVISE_CRASH_DIR", testing::TempDir().c_str(), 1), 0);
  const std::string dump_path =
      testing::TempDir() + "stall_" + std::to_string(getpid()) + ".json";
  std::remove(dump_path.c_str());

  const uint64_t stalls_before = StallCount();
  StallWatchdogOptions options;
  options.threshold_s = 0.05;
  options.poll_interval_s = 0.01;
  StatusOr<std::unique_ptr<StallWatchdog>> watchdog =
      StallWatchdog::Start(options);
  ASSERT_TRUE(watchdog.ok()) << watchdog.status().ToString();

  {
    FlightOpScope stalled("watchdog.test_op");
    SleepSeconds(0.25);
    EXPECT_EQ(StallCount(), stalls_before + 1);
    // Dedup: the same scope instance is never reported twice.
    SleepSeconds(0.2);
    EXPECT_EQ(StallCount(), stalls_before + 1);

    const std::string dump = ReadFileOrEmpty(dump_path);
    ASSERT_FALSE(dump.empty()) << "expected stall dump at " << dump_path;
    EXPECT_NE(dump.find("watchdog.test_op"), std::string::npos);
    EXPECT_NE(dump.find("stall watchdog"), std::string::npos);
    EXPECT_NE(dump.find("obs.watchdog_stall"), std::string::npos);
    EXPECT_NE(dump.find("in_flight"), std::string::npos);
  }
  // A fresh scope past the threshold is a fresh stall.
  {
    FlightOpScope stalled_again("watchdog.test_op");
    SleepSeconds(0.25);
    EXPECT_EQ(StallCount(), stalls_before + 2);
  }
  (*watchdog)->Stop();
}

TEST(StallWatchdogTest, FastOperationsAreNotReported) {
  const uint64_t stalls_before = StallCount();
  StallWatchdogOptions options;
  options.threshold_s = 10.0;
  options.poll_interval_s = 0.01;
  options.write_dump = false;
  StatusOr<std::unique_ptr<StallWatchdog>> watchdog =
      StallWatchdog::Start(options);
  ASSERT_TRUE(watchdog.ok()) << watchdog.status().ToString();
  for (int i = 0; i < 10; ++i) {
    FlightOpScope fast("watchdog.fast_op");
    SleepSeconds(0.005);
  }
  SleepSeconds(0.05);
  EXPECT_EQ(StallCount(), stalls_before);
  (*watchdog)->Stop();
  (*watchdog)->Stop();  // idempotent
}

TEST(StallWatchdogTest, RejectsNonPositiveThreshold) {
  StallWatchdogOptions options;
  options.threshold_s = 0.0;
  EXPECT_FALSE(StallWatchdog::Start(options).ok());
}

TEST(StallWatchdogTest, EnvActivationParsesThreshold) {
  ASSERT_EQ(setenv("REVISE_WATCHDOG_S", "30", 1), 0);
  StallWatchdog* watchdog = StartStallWatchdogFromEnv();
  ASSERT_NE(watchdog, nullptr);
  EXPECT_EQ(StartStallWatchdogFromEnv(), watchdog);
  StopGlobalStallWatchdog();
}

TEST(StallWatchdogTest, EnvActivationRejectsMalformedValues) {
  ASSERT_EQ(setenv("REVISE_WATCHDOG_S", "soon", 1), 0);
  EXPECT_EQ(StartStallWatchdogFromEnv(), nullptr);
  ASSERT_EQ(setenv("REVISE_WATCHDOG_S", "-3", 1), 0);
  EXPECT_EQ(StartStallWatchdogFromEnv(), nullptr);
  ASSERT_EQ(setenv("REVISE_WATCHDOG_S", "", 1), 0);
  EXPECT_EQ(StartStallWatchdogFromEnv(), nullptr);
}

}  // namespace
}  // namespace revise::obs
