#include <gtest/gtest.h>

#include "hardness/families.h"
#include "hardness/tau.h"
#include "logic/parser.h"
#include "revision/formula_based.h"
#include "revision/iterated.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "util/random.h"

namespace revise {
namespace {

// Draws a mix of special-case and random instances pi ⊆ tau_n^max.
std::vector<std::vector<size_t>> SampleInstances(const TauMax& tau,
                                                 int random_count,
                                                 uint64_t seed) {
  std::vector<std::vector<size_t>> instances;
  instances.push_back({});  // empty (satisfiable)
  std::vector<size_t> all(tau.num_clauses());
  for (size_t j = 0; j < all.size(); ++j) all[j] = j;
  instances.push_back(all);  // the full tau_n^max (unsatisfiable)
  Rng rng(seed);
  for (int i = 0; i < random_count; ++i) {
    instances.push_back(
        tau.RandomInstance(1 + rng.Below(tau.num_clauses()), &rng));
  }
  return instances;
}

TEST(TauMaxTest, CountsMatchTheta) {
  Vocabulary vocabulary;
  const TauMax tau3(3, &vocabulary);
  EXPECT_EQ(8u, tau3.num_clauses());  // C(3,3) * 8
  const TauMax tau5(5, &vocabulary);
  EXPECT_EQ(80u, tau5.num_clauses());  // C(5,3) * 8
}

TEST(TauMaxTest, FullTauIsUnsatisfiable) {
  Vocabulary vocabulary;
  const TauMax tau(3, &vocabulary);
  std::vector<size_t> all(tau.num_clauses());
  for (size_t j = 0; j < all.size(); ++j) all[j] = j;
  EXPECT_FALSE(IsSatisfiable(tau.InstanceFormula(all)));
  EXPECT_TRUE(IsSatisfiable(tau.InstanceFormula({0, 1, 2})));
}

TEST(TauMaxTest, RandomInstanceHasDistinctSortedClauses) {
  Vocabulary vocabulary;
  const TauMax tau(4, &vocabulary);
  Rng rng(9);
  const auto pi = tau.RandomInstance(10, &rng);
  EXPECT_EQ(10u, pi.size());
  for (size_t i = 1; i < pi.size(); ++i) {
    EXPECT_LT(pi[i - 1], pi[i]);
  }
}

// ---- Theorem 3.1: pi satisfiable iff T_n *_GFUV P_n |= Q_pi -----------

TEST(Theorem31Test, ReductionDecides3SatThroughGfuv) {
  Vocabulary vocabulary;
  const Theorem31Family family(3, &vocabulary);
  // The GFUV revision is computed ONCE per n — it is the advice string.
  const Formula advice = GfuvFormula(family.t, family.p);
  for (const auto& pi : SampleInstances(family.tau, 20, 1234)) {
    const bool satisfiable =
        IsSatisfiable(family.tau.InstanceFormula(pi));
    const bool entailed = Entails(advice, family.Query(pi));
    EXPECT_EQ(satisfiable, entailed) << "pi size " << pi.size();
  }
}

TEST(Theorem31Test, FamilySizeIsPolynomial) {
  // |T_n| + |P_n| must be polynomial in n: both are O(n^3) literals.
  Vocabulary vocabulary;
  for (int n : {3, 4, 5}) {
    const Theorem31Family family(n, &vocabulary);
    const uint64_t size =
        family.t.VarOccurrences() + family.p.VarOccurrences();
    EXPECT_LT(size, static_cast<uint64_t>(n) * n * n * 16);
  }
}

// Theorem 3.2: the same reduction works for Winslett, Borgida and Satoh
// because T_n is a maximal consistent set of atoms (a single model) and
// V(P) ⊆ V(T).  We validate the equivalence of the four operators on the
// family directly.
TEST(Theorem32Test, OperatorsCoincideOnTheFamilyQueries) {
  Vocabulary vocabulary;
  const Theorem31Family family(3, &vocabulary);
  const Alphabet alphabet = RevisionAlphabet(family.t, family.p);
  const ModelSet gfuv =
      OperatorById(OperatorId::kGfuv)->ReviseModels(family.t, family.p,
                                                    alphabet);
  for (const OperatorId id : {OperatorId::kWinslett, OperatorId::kBorgida,
                              OperatorId::kSatoh}) {
    EXPECT_EQ(gfuv,
              OperatorById(id)->ReviseModels(family.t, family.p, alphabet))
        << OperatorById(id)->name();
  }
}

// ---- Theorem 3.3: pi satisfiable iff M_pi not a model of T *_F P ------

TEST(Theorem33Test, ReductionDecides3SatThroughForbusModelChecking) {
  Vocabulary vocabulary;
  const Theorem33Family family(3, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  // Compute the revision once (the advice) and model-check per instance.
  const ModelSet revised = OperatorById(OperatorId::kForbus)
                               ->ReviseModels(family.t, family.p, alphabet);
  for (const auto& pi : SampleInstances(family.tau, 12, 555)) {
    const bool satisfiable =
        IsSatisfiable(family.tau.InstanceFormula(pi));
    const Interpretation m_pi = family.MPi(pi, alphabet);
    EXPECT_EQ(!satisfiable, revised.Contains(m_pi))
        << "pi size " << pi.size();
    // And therefore Q_pi (true everywhere except M_pi) is entailed iff
    // pi is satisfiable.
    bool entails = true;
    for (const Interpretation& n : revised) {
      if (n == m_pi) {
        entails = false;
        break;
      }
    }
    EXPECT_EQ(satisfiable, entails);
  }
}

// ---- Theorem 3.6: pi satisfiable iff C_pi |= T *_D P (and *_Web) ------

TEST(Theorem36Test, ReductionDecides3SatThroughDalalAndWeber) {
  Vocabulary vocabulary;
  const Theorem36Family family(3, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  const ModelSet dalal = OperatorById(OperatorId::kDalal)
                             ->ReviseModels(family.t, family.p, alphabet);
  const ModelSet weber = OperatorById(OperatorId::kWeber)
                             ->ReviseModels(family.t, family.p, alphabet);
  for (const auto& pi : SampleInstances(family.tau, 12, 777)) {
    const bool satisfiable =
        IsSatisfiable(family.tau.InstanceFormula(pi));
    const Interpretation c_pi = family.CPi(pi, alphabet);
    EXPECT_EQ(satisfiable, dalal.Contains(c_pi)) << "Dalal";
    EXPECT_EQ(satisfiable, weber.Contains(c_pi)) << "Weber";
  }
}

TEST(Theorem36Test, KTnPnEqualsN) {
  // The proof shows k_{T_n, P_n} = n.
  Vocabulary vocabulary;
  const int n = 3;
  const Theorem36Family family(n, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  const ModelSet mt =
      EnumerateModels(family.t.AsFormula(), alphabet);
  const ModelSet mp = EnumerateModels(family.p, alphabet);
  size_t k = alphabet.size();
  for (const Interpretation& m : mt) {
    for (const Interpretation& q : mp) {
      k = std::min(k, m.HammingDistance(q));
    }
  }
  EXPECT_EQ(static_cast<size_t>(n), k);
}

// ---- Theorem 4.1: the bounded-P reduction for GFUV --------------------

TEST(Theorem41Test, BoundedPReductionPreservesQueries) {
  Vocabulary vocabulary;
  const Theorem41Family family(3, &vocabulary);
  EXPECT_EQ(1u, family.p_prime.VarOccurrences());  // |P'| is constant
  const Formula advice = GfuvFormula(family.t_prime, family.p_prime);
  for (const auto& pi : SampleInstances(family.base.tau, 10, 999)) {
    const bool satisfiable =
        IsSatisfiable(family.base.tau.InstanceFormula(pi));
    EXPECT_EQ(satisfiable, Entails(advice, family.Query(pi)))
        << "pi size " << pi.size();
  }
}

// ---- Theorem 6.5: iterated bounded revisions --------------------------

TEST(Theorem65Test, IteratedReductionDecides3Sat) {
  Vocabulary vocabulary;
  const Theorem65Family family(3, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  // Each update has constant size.
  for (const Formula& p : family.updates) {
    EXPECT_EQ(2u, p.VarOccurrences());
  }
  for (const OperatorId id :
       {OperatorId::kDalal, OperatorId::kWeber, OperatorId::kWinslett,
        OperatorId::kForbus, OperatorId::kSatoh, OperatorId::kBorgida}) {
    const ModelSet revised = IteratedReviseModels(
        *OperatorById(id), family.t, family.updates, alphabet);
    for (const auto& pi : SampleInstances(family.tau, 8, 333)) {
      const bool satisfiable =
          IsSatisfiable(family.tau.InstanceFormula(pi));
      EXPECT_EQ(satisfiable, revised.Contains(family.CPi(pi, alphabet)))
          << OperatorById(id)->name() << " pi size " << pi.size();
    }
  }
}

// The proof of Theorem 6.5 also shows the iterated result coincides for
// all six model-based operators on this family.
TEST(Theorem65Test, AllModelBasedOperatorsCoincideOnTheFamily) {
  Vocabulary vocabulary;
  const Theorem65Family family(3, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  const ModelSet reference = IteratedReviseModels(
      *OperatorById(OperatorId::kDalal), family.t, family.updates,
      alphabet);
  for (const ModelBasedOperator* op : AllModelBasedOperators()) {
    EXPECT_EQ(reference, IteratedReviseModels(*op, family.t,
                                              family.updates, alphabet))
        << op->name();
  }
}

// ---- Explosion examples ------------------------------------------------

TEST(NebelExplosionTest, WorldsDoubleWithM) {
  Vocabulary vocabulary;
  for (int m = 1; m <= 6; ++m) {
    const NebelExplosionFamily family(m, &vocabulary);
    EXPECT_EQ(uint64_t{1} << m,
              MaximalConsistentSubsets(family.t, family.p).size());
  }
}

TEST(NebelExplosionTest, GfuvResultIsNeverthelessEquivalentToP) {
  // The exponential blow-up is about the naive representation; the
  // revised KB is logically equivalent to P here.
  Vocabulary vocabulary;
  const NebelExplosionFamily family(4, &vocabulary);
  EXPECT_TRUE(AreEquivalent(GfuvFormula(family.t, family.p), family.p));
}

TEST(WinslettChainTest, ConstantSizePStillExplodesWorlds) {
  Vocabulary vocabulary;
  for (int m = 1; m <= 5; ++m) {
    const WinslettChainFamily family(m, &vocabulary);
    EXPECT_EQ(1u, family.p.VarOccurrences());  // P = z_m
    const size_t worlds =
        MaximalConsistentSubsets(family.t, family.p).size();
    EXPECT_GE(worlds, size_t{1} << m) << "m=" << m;
  }
}

}  // namespace
}  // namespace revise
