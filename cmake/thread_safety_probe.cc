// Negative compile probe for the thread-safety annotations (the
// -Wthread-safety analogue of nodiscard_probe.cc): reading a
// REVISE_GUARDED_BY member without holding its mutex must FAIL to
// compile under clang with -Wthread-safety -Werror.  CMake try_compiles
// this file with exactly those flags and aborts the configure if it
// succeeds — that would mean the annotations in util/mutex.h /
// util/thread_annotations.h have stopped being enforced (e.g. the
// macros were gutted or the capability attribute fell off util::Mutex).
//
// Never add this file to any build target.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Probe {
 public:
  // Correct usage: compiles under the analysis.  Keeps the probe honest —
  // if the whole file failed to compile for an unrelated reason (header
  // typo, missing include path), this function would fail too and the
  // try_compile failure would be a false negative; CMake cross-checks by
  // also compiling this file with the violation #ifdef'd out.
  int Guarded() {
    revise::util::MutexLock lock(mu_);
    return value_;
  }

#ifndef REVISE_PROBE_BASELINE
  // The violation: value_ is read without mu_ held.  -Wthread-safety
  // -Werror must reject this line.
  int Unguarded() { return value_; }
#endif

 private:
  revise::util::Mutex mu_;
  int value_ REVISE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Probe probe;
  return probe.Guarded();
}
