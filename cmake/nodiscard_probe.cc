// Negative compile probe for the [[nodiscard]] contract on the
// error-handling types (see the try_compile block in CMakeLists.txt).
//
// This file is EXPECTED NOT TO COMPILE under -Werror=unused-result: every
// statement below discards a [[nodiscard]] value.  If it ever compiles,
// configuration fails — that means the nodiscard annotations were lost and
// silently dropped Status values would go unnoticed again.

#include "util/status.h"

namespace {

revise::Status MakeStatus() { return revise::Status::Ok(); }
revise::StatusOr<int> MakeStatusOr() { return 42; }

void DiscardStatus() {
  MakeStatus();  // discarded Status — must warn
}

void DiscardStatusOr() {
  MakeStatusOr();  // discarded StatusOr — must warn
}

void DiscardOk() {
  revise::Status status = MakeStatus();
  status.ok();  // discarded ok() — must warn
}

}  // namespace
